// Unit tests for src/pooling: ground truth, query designs, and the
// structural invariants of the bipartite pooling multigraph.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "pooling/ground_truth.hpp"
#include "pooling/pooling_graph.hpp"
#include "pooling/query_design.hpp"
#include "util/assert.hpp"

namespace npd::pooling {
namespace {

rand::Rng test_rng(std::uint64_t tag = 0) { return rand::Rng(0xBADC0FFEE + tag); }

// ----------------------------------------------------------- ground truth

TEST(GroundTruthTest, ExactlyKOnes) {
  auto rng = test_rng();
  const GroundTruth truth = make_ground_truth(100, 17, rng);
  EXPECT_EQ(truth.n(), 100);
  EXPECT_EQ(truth.k(), 17);
  Index ones = 0;
  for (const Bit b : truth.bits) {
    ones += b;
  }
  EXPECT_EQ(ones, 17);
}

TEST(GroundTruthTest, OnesListMatchesBits) {
  auto rng = test_rng(1);
  const GroundTruth truth = make_ground_truth(50, 9, rng);
  EXPECT_TRUE(std::is_sorted(truth.ones.begin(), truth.ones.end()));
  for (const Index i : truth.ones) {
    EXPECT_EQ(truth.bits[static_cast<std::size_t>(i)], 1);
  }
}

TEST(GroundTruthTest, DegenerateZeroAndFull) {
  auto rng = test_rng(2);
  const GroundTruth none = make_ground_truth(10, 0, rng);
  EXPECT_TRUE(none.ones.empty());
  const GroundTruth all = make_ground_truth(10, 10, rng);
  EXPECT_EQ(all.k(), 10);
}

TEST(GroundTruthTest, RejectsBadK) {
  auto rng = test_rng(3);
  EXPECT_THROW((void)make_ground_truth(10, 11, rng), ContractViolation);
  EXPECT_THROW((void)make_ground_truth(10, -1, rng), ContractViolation);
  EXPECT_THROW((void)make_ground_truth(0, 0, rng), ContractViolation);
}

TEST(GroundTruthTest, UniformOverSupport) {
  // Every agent is a one with probability k/n.
  auto rng = test_rng(4);
  const int trials = 5000;
  std::vector<int> counts(20, 0);
  for (int t = 0; t < trials; ++t) {
    const GroundTruth truth = make_ground_truth(20, 5, rng);
    for (const Index i : truth.ones) {
      ++counts[static_cast<std::size_t>(i)];
    }
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.035);
  }
}

TEST(RegimeTest, SublinearKMatchesPower) {
  EXPECT_EQ(sublinear_k(10000, 0.25), 10);   // 10000^0.25 = 10
  EXPECT_EQ(sublinear_k(100000, 0.25), 18);  // ≈ 17.78
  EXPECT_EQ(sublinear_k(100, 0.5), 10);
}

TEST(RegimeTest, SublinearKClampedToAtLeastOne) {
  EXPECT_GE(sublinear_k(2, 0.1), 1);
}

TEST(RegimeTest, LinearKMatchesFraction) {
  EXPECT_EQ(linear_k(1000, 0.1), 100);
  EXPECT_EQ(linear_k(1000, 0.05), 50);
}

TEST(RegimeTest, RejectsBadParameters) {
  EXPECT_THROW((void)sublinear_k(100, 0.0), ContractViolation);
  EXPECT_THROW((void)sublinear_k(100, 1.0), ContractViolation);
  EXPECT_THROW((void)linear_k(100, 0.0), ContractViolation);
  EXPECT_THROW((void)linear_k(100, 1.0), ContractViolation);
}

// ---------------------------------------------------------- query design

TEST(QueryDesignTest, PaperDesignIsHalfWithReplacement) {
  const QueryDesign d = paper_design(1000);
  EXPECT_EQ(d.gamma, 500);
  EXPECT_EQ(d.mode, SamplingMode::WithReplacement);
}

TEST(QueryDesignTest, FractionalDesignRounds) {
  const QueryDesign d =
      fractional_design(1000, 0.3, SamplingMode::WithoutReplacement);
  EXPECT_EQ(d.gamma, 300);
  EXPECT_EQ(d.mode, SamplingMode::WithoutReplacement);
}

// Degenerate design parameters are usage errors with pinned messages —
// a fraction that rounds to an empty pool must never silently become a
// different design.
TEST(QueryDesignTest, PaperDesignRejectsTinyN) {
  try {
    (void)paper_design(1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "paper design: need n >= 2");
  }
}

TEST(QueryDesignTest, FractionalDesignRejectsTinyN) {
  try {
    (void)fractional_design(1, 0.5, SamplingMode::WithReplacement);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "fractional design: need n >= 2");
  }
}

TEST(QueryDesignTest, FractionalDesignRejectsFractionOutOfRange) {
  for (const double fraction : {0.0, -0.25, 1.5}) {
    try {
      (void)fractional_design(100, fraction, SamplingMode::WithReplacement);
      FAIL() << "expected std::invalid_argument for fraction " << fraction;
    } catch (const std::invalid_argument& error) {
      EXPECT_STREQ(error.what(),
                   "fractional design: pool fraction must lie in (0, 1]");
    }
  }
}

TEST(QueryDesignTest, FractionalDesignRejectsEmptyPoolRounding) {
  try {
    (void)fractional_design(10, 0.001, SamplingMode::WithReplacement);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "fractional design: pool fraction rounds to an empty pool "
                 "(gamma = 0)");
  }
}

TEST(QueryDesignTest, FractionalDesignAcceptsSmallestNondegenerateFraction) {
  // The smallest fraction that still rounds to Γ >= 1 stays a valid design.
  const QueryDesign d =
      fractional_design(10, 0.05, SamplingMode::WithReplacement);
  EXPECT_EQ(d.gamma, 1);
}

TEST(QueryDesignTest, SampleQuerySizeIsGamma) {
  auto rng = test_rng(5);
  const QueryDesign d = paper_design(100);
  const auto q = sample_query(d, 100, rng);
  EXPECT_EQ(static_cast<Index>(q.size()), d.gamma);
}

TEST(QueryDesignTest, WithoutReplacementHasNoDuplicates) {
  auto rng = test_rng(6);
  const QueryDesign d = fractional_design(60, 0.5, SamplingMode::WithoutReplacement);
  const auto q = sample_query(d, 60, rng);
  std::set<Index> unique(q.begin(), q.end());
  EXPECT_EQ(unique.size(), q.size());
}

TEST(QueryDesignTest, WithReplacementHasDuplicatesWhp) {
  auto rng = test_rng(7);
  const QueryDesign d = paper_design(100);  // 50 draws from 100
  int with_dup = 0;
  for (int t = 0; t < 50; ++t) {
    const auto q = sample_query(d, 100, rng);
    std::set<Index> unique(q.begin(), q.end());
    if (unique.size() < q.size()) {
      ++with_dup;
    }
  }
  EXPECT_GT(with_dup, 45);  // collision probability is ≈ 1
}

TEST(QueryDesignTest, BernoulliPoolSizeConcentrates) {
  auto rng = test_rng(20);
  const QueryDesign d = fractional_design(400, 0.5, SamplingMode::Bernoulli);
  double total = 0.0;
  for (int t = 0; t < 200; ++t) {
    const auto q = sample_query(d, 400, rng);
    std::set<Index> unique(q.begin(), q.end());
    EXPECT_EQ(unique.size(), q.size()) << "Bernoulli pools must be simple";
    total += static_cast<double>(q.size());
  }
  // E[size] = 200; std of the mean over 200 trials ~ 0.7.
  EXPECT_NEAR(total / 200.0, 200.0, 4.0);
}

TEST(QueryDesignTest, BernoulliNeverEmpty) {
  auto rng = test_rng(21);
  const QueryDesign d = fractional_design(50, 0.02, SamplingMode::Bernoulli);
  for (int t = 0; t < 300; ++t) {
    EXPECT_GE(sample_query(d, 50, rng).size(), 1u);
  }
}

TEST(QueryDesignTest, BernoulliAgentsSorted) {
  auto rng = test_rng(22);
  const QueryDesign d = fractional_design(100, 0.3, SamplingMode::Bernoulli);
  const auto q = sample_query(d, 100, rng);
  EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
}

// ---------------------------------------------------------------- graph

TEST(PoolingGraphTest, BuilderCountsQueries) {
  PoolingGraphBuilder builder(10);
  EXPECT_EQ(builder.num_queries_so_far(), 0);
  const std::vector<Index> q{0, 1, 2};
  EXPECT_EQ(builder.add_query(q), 0);
  EXPECT_EQ(builder.add_query(q), 1);
  EXPECT_EQ(builder.num_queries_so_far(), 2);
}

TEST(PoolingGraphTest, MultisetRoundTrips) {
  PoolingGraphBuilder builder(10);
  const std::vector<Index> q{3, 1, 3, 7, 1, 1};
  (void)builder.add_query(q);
  const PoolingGraph g = builder.build();
  const auto multiset = g.query_multiset(0);
  EXPECT_TRUE(std::equal(multiset.begin(), multiset.end(), q.begin(), q.end()));
}

TEST(PoolingGraphTest, DistinctAndMultiplicity) {
  PoolingGraphBuilder builder(10);
  (void)builder.add_query(std::vector<Index>{3, 1, 3, 7, 1, 1});
  const PoolingGraph g = builder.build();

  const auto distinct = g.query_distinct(0);
  const auto counts = g.query_multiplicity(0);
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], 1);
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(distinct[1], 3);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(distinct[2], 7);
  EXPECT_EQ(counts[2], 1);
}

TEST(PoolingGraphTest, DegreesAccumulateAcrossQueries) {
  PoolingGraphBuilder builder(5);
  (void)builder.add_query(std::vector<Index>{0, 0, 1});
  (void)builder.add_query(std::vector<Index>{0, 2});
  const PoolingGraph g = builder.build();

  EXPECT_EQ(g.delta(0), 3);       // sampled 2 + 1 times
  EXPECT_EQ(g.delta_star(0), 2);  // in 2 distinct queries
  EXPECT_EQ(g.delta(1), 1);
  EXPECT_EQ(g.delta_star(1), 1);
  EXPECT_EQ(g.delta(3), 0);
  EXPECT_EQ(g.delta_star(3), 0);
}

TEST(PoolingGraphTest, AgentQueriesIsTransposeOfQueryDistinct) {
  auto rng = test_rng(8);
  const PoolingGraph g = make_pooling_graph(40, 25, paper_design(40), rng);

  for (Index i = 0; i < g.num_agents(); ++i) {
    for (const Index j : g.agent_queries(i)) {
      const auto distinct = g.query_distinct(j);
      EXPECT_TRUE(std::binary_search(distinct.begin(), distinct.end(), i));
    }
  }
  Index total_agent_side = 0;
  for (Index i = 0; i < g.num_agents(); ++i) {
    total_agent_side += g.delta_star(i);
    EXPECT_TRUE(std::is_sorted(g.agent_queries(i).begin(),
                               g.agent_queries(i).end()));
  }
  Index total_query_side = 0;
  for (Index j = 0; j < g.num_queries(); ++j) {
    total_query_side += static_cast<Index>(g.query_distinct(j).size());
  }
  EXPECT_EQ(total_agent_side, total_query_side);
}

TEST(PoolingGraphTest, EdgeCountIsMGamma) {
  auto rng = test_rng(9);
  const QueryDesign d = paper_design(50);
  const PoolingGraph g = make_pooling_graph(50, 12, d, rng);
  EXPECT_EQ(g.num_edges(), 12 * d.gamma);

  Index delta_sum = 0;
  for (Index i = 0; i < g.num_agents(); ++i) {
    delta_sum += g.delta(i);
  }
  EXPECT_EQ(delta_sum, g.num_edges());
}

TEST(PoolingGraphTest, DeltaStarNeverExceedsDelta) {
  auto rng = test_rng(10);
  const PoolingGraph g = make_pooling_graph(60, 30, paper_design(60), rng);
  for (Index i = 0; i < g.num_agents(); ++i) {
    EXPECT_LE(g.delta_star(i), g.delta(i));
    EXPECT_LE(g.delta_star(i), g.num_queries());
  }
}

TEST(PoolingGraphTest, MultiplicityLookup) {
  PoolingGraphBuilder builder(6);
  (void)builder.add_query(std::vector<Index>{2, 2, 5});
  const PoolingGraph g = builder.build();
  EXPECT_EQ(g.multiplicity(0, 2), 2);
  EXPECT_EQ(g.multiplicity(0, 5), 1);
  EXPECT_EQ(g.multiplicity(0, 0), 0);
}

TEST(PoolingGraphTest, BuilderRejectsBadAgents) {
  PoolingGraphBuilder builder(4);
  EXPECT_THROW((void)builder.add_query(std::vector<Index>{4}),
               ContractViolation);
  EXPECT_THROW((void)builder.add_query(std::vector<Index>{-1}),
               ContractViolation);
  EXPECT_THROW((void)builder.add_query(std::vector<Index>{}),
               ContractViolation);
}

TEST(PoolingGraphTest, BuilderIsReusableAfterBuild) {
  PoolingGraphBuilder builder(5);
  (void)builder.add_query(std::vector<Index>{0, 1});
  const PoolingGraph first = builder.build();
  EXPECT_EQ(first.num_queries(), 1);
  EXPECT_EQ(builder.num_queries_so_far(), 0);
  (void)builder.add_query(std::vector<Index>{2, 3});
  (void)builder.add_query(std::vector<Index>{4, 4});
  const PoolingGraph second = builder.build();
  EXPECT_EQ(second.num_queries(), 2);
  EXPECT_EQ(second.delta(4), 2);
}

TEST(PoolingGraphTest, IncrementalEqualsBatch) {
  // Adding queries one by one (the paper's protocol) must produce the same
  // graph as the batch constructor under the same random stream.
  auto rng1 = test_rng(11);
  auto rng2 = test_rng(11);
  const QueryDesign d = paper_design(30);

  const PoolingGraph batch = make_pooling_graph(30, 8, d, rng1);
  PoolingGraphBuilder builder(30);
  for (int j = 0; j < 8; ++j) {
    (void)builder.add_random_query(d, rng2);
  }
  const PoolingGraph inc = builder.build();

  ASSERT_EQ(batch.num_queries(), inc.num_queries());
  for (Index j = 0; j < batch.num_queries(); ++j) {
    const auto a = batch.query_multiset(j);
    const auto b = inc.query_multiset(j);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

// ----------------------------------------------- constant column weight

TEST(CcwGraphTest, EveryAgentHasExactWeight) {
  auto rng = test_rng(12);
  const PoolingGraph g = make_constant_column_weight_graph(50, 20, 5, rng);
  for (Index i = 0; i < g.num_agents(); ++i) {
    EXPECT_EQ(g.delta_star(i), 5);
    EXPECT_GE(g.delta(i), 5);  // padding may add at most a few more
  }
}

TEST(CcwGraphTest, NoQueryIsEmpty) {
  auto rng = test_rng(13);
  const PoolingGraph g = make_constant_column_weight_graph(10, 40, 2, rng);
  for (Index j = 0; j < g.num_queries(); ++j) {
    EXPECT_GE(g.query_multiset(j).size(), 1u);
  }
}

TEST(CcwGraphTest, RejectsBadWeight) {
  auto rng = test_rng(14);
  EXPECT_THROW((void)make_constant_column_weight_graph(10, 5, 6, rng),
               ContractViolation);
  EXPECT_THROW((void)make_constant_column_weight_graph(10, 5, 0, rng),
               ContractViolation);
}

}  // namespace
}  // namespace npd::pooling
