// Tests for the AMP baseline: denoiser calculus (closed forms + finite
// differences), the exactness of the centering/scaling preprocessing,
// convergence of the iteration on easy instances, and agreement between
// the state-evolution prediction and the empirical τ trace.

#include <gtest/gtest.h>

#include <cmath>

#include "amp/amp.hpp"
#include "amp/denoiser.hpp"
#include "amp/preprocess.hpp"
#include "amp/state_evolution.hpp"
#include "core/evaluation.hpp"
#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "linalg/vector_ops.hpp"
#include "noise/channel.hpp"
#include "pooling/query_design.hpp"
#include "rand/rng.hpp"
#include "util/assert.hpp"

namespace npd::amp {
namespace {

rand::Rng test_rng(std::uint64_t tag = 0) { return rand::Rng(0xA3B + tag); }

// --------------------------------------------------------------- denoiser

TEST(BayesDenoiserTest, OutputIsPosteriorInUnitInterval) {
  const BayesBernoulliDenoiser d(0.1);
  for (const double y : {-5.0, -1.0, 0.0, 0.5, 1.0, 2.0, 6.0}) {
    const double e = d.eta(y, 0.5);
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1.0);
  }
}

TEST(BayesDenoiserTest, MonotoneInY) {
  const BayesBernoulliDenoiser d(0.2);
  double prev = 0.0;
  for (double y = -3.0; y <= 4.0; y += 0.25) {
    const double e = d.eta(y, 0.7);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(BayesDenoiserTest, SymmetryPointAtHalfForUniformPrior) {
  // With π = 1/2 the posterior at y = 1/2 is exactly 1/2.
  const BayesBernoulliDenoiser d(0.5);
  EXPECT_NEAR(d.eta(0.5, 0.3), 0.5, 1e-12);
}

TEST(BayesDenoiserTest, SmallNoiseSharpensDecision) {
  const BayesBernoulliDenoiser d(0.1);
  EXPECT_GT(d.eta(1.0, 0.01), 0.999);
  EXPECT_LT(d.eta(0.0, 0.01), 0.001);
}

TEST(BayesDenoiserTest, LargeNoiseReturnsPrior) {
  const BayesBernoulliDenoiser d(0.3);
  EXPECT_NEAR(d.eta(0.7, 1e6), 0.3, 1e-3);
}

TEST(BayesDenoiserTest, DerivativeMatchesFiniteDifference) {
  const BayesBernoulliDenoiser d(0.15);
  const double tau2 = 0.4;
  for (const double y : {-1.0, 0.0, 0.3, 0.5, 1.0, 2.0}) {
    const double h = 1e-6;
    const double fd = (d.eta(y + h, tau2) - d.eta(y - h, tau2)) / (2.0 * h);
    EXPECT_NEAR(d.eta_prime(y, tau2), fd, 1e-5) << "y=" << y;
  }
}

TEST(BayesDenoiserTest, RejectsDegenerateParams) {
  EXPECT_THROW(BayesBernoulliDenoiser(0.0), ContractViolation);
  EXPECT_THROW(BayesBernoulliDenoiser(1.0), ContractViolation);
  const BayesBernoulliDenoiser d(0.5);
  EXPECT_THROW((void)d.eta(0.0, 0.0), ContractViolation);
}

TEST(SoftThresholdTest, ShrinksAndKills) {
  const SoftThresholdDenoiser d(2.0);
  const double tau2 = 0.25;  // tau = 0.5, cut = 1.0
  EXPECT_DOUBLE_EQ(d.eta(3.0, tau2), 2.0);
  EXPECT_DOUBLE_EQ(d.eta(-3.0, tau2), -2.0);
  EXPECT_DOUBLE_EQ(d.eta(0.5, tau2), 0.0);
  EXPECT_DOUBLE_EQ(d.eta(-0.9, tau2), 0.0);
}

TEST(SoftThresholdTest, DerivativeIsIndicator) {
  const SoftThresholdDenoiser d(1.0);
  EXPECT_DOUBLE_EQ(d.eta_prime(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.eta_prime(0.5, 1.0), 0.0);
}

TEST(DenoiserFactoryTest, NamesIdentifyConfiguration) {
  EXPECT_NE(make_bayes_denoiser(0.1)->name().find("bayes"),
            std::string::npos);
  EXPECT_NE(make_soft_threshold_denoiser(1.5)->name().find("soft"),
            std::string::npos);
}

// ------------------------------------------------------------- preprocess

TEST(PreprocessTest, NoiselessStandardizationIsExact) {
  // For the noiseless channel, y = B·σ must hold *exactly* (the centering
  // uses the known k, so no approximation enters).
  auto rng = test_rng(1);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      60, 6, 25, pooling::paper_design(60), *channel, rng);
  const AmpProblem problem =
      standardize(instance, channel->linearization(60, 6, 30));

  std::vector<double> sigma(60);
  for (Index i = 0; i < 60; ++i) {
    sigma[static_cast<std::size_t>(i)] =
        static_cast<double>(instance.truth.bits[static_cast<std::size_t>(i)]);
  }
  std::vector<double> b_sigma(25);
  problem.b.matvec(sigma, b_sigma);
  for (Index j = 0; j < 25; ++j) {
    EXPECT_NEAR(b_sigma[static_cast<std::size_t>(j)],
                problem.y[static_cast<std::size_t>(j)], 1e-9);
  }
  EXPECT_DOUBLE_EQ(problem.effective_noise_var, 0.0);
}

TEST(PreprocessTest, ColumnsHaveRoughlyUnitNorm) {
  auto rng = test_rng(2);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      200, 10, 120, pooling::paper_design(200), *channel, rng);
  const AmpProblem problem =
      standardize(instance, channel->linearization(200, 10, 100));

  double norm_sum = 0.0;
  for (Index c = 0; c < problem.n; ++c) {
    norm_sum += problem.b.column_norm_squared(c);
  }
  EXPECT_NEAR(norm_sum / static_cast<double>(problem.n), 1.0, 0.1);
}

TEST(PreprocessTest, BitFlipChannelResidualIsCentered) {
  // Under the bit-flip channel, y − B·σ is the (standardized) channel
  // noise: it must be centered with roughly the predicted variance.
  auto rng = test_rng(3);
  const noise::BitFlipChannel channel(0.2, 0.1);
  const core::Instance instance = core::make_instance(
      400, 20, 300, pooling::paper_design(400), channel, rng);
  const AmpProblem problem =
      standardize(instance, channel.linearization(400, 20, 200));

  std::vector<double> sigma(400);
  for (Index i = 0; i < 400; ++i) {
    sigma[static_cast<std::size_t>(i)] =
        static_cast<double>(instance.truth.bits[static_cast<std::size_t>(i)]);
  }
  std::vector<double> b_sigma(300);
  problem.b.matvec(sigma, b_sigma);
  double mean_resid = 0.0;
  double var_resid = 0.0;
  for (Index j = 0; j < 300; ++j) {
    const double r = problem.y[static_cast<std::size_t>(j)] -
                     b_sigma[static_cast<std::size_t>(j)];
    mean_resid += r;
    var_resid += r * r;
  }
  mean_resid /= 300.0;
  var_resid = var_resid / 300.0 - mean_resid * mean_resid;
  // Per-residual std ≈ 0.5 after standardization; the mean of 300 draws
  // fluctuates at the 0.03 scale, so test at ±3σ.
  EXPECT_NEAR(mean_resid, 0.0, 0.09);
  EXPECT_NEAR(var_resid / problem.effective_noise_var, 1.0, 0.3);
}

TEST(PreprocessTest, PriorIsKOverN) {
  auto rng = test_rng(4);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      50, 5, 10, pooling::paper_design(50), *channel, rng);
  const AmpProblem problem =
      standardize(instance, channel->linearization(50, 5, 25));
  EXPECT_DOUBLE_EQ(problem.pi, 0.1);
}

// --------------------------------------------------------------- run_amp

TEST(AmpRunTest, RecoversNoiselessInstance) {
  auto rng = test_rng(5);
  const auto channel = noise::make_noiseless();
  const Index n = 500;
  const Index k = 5;
  const Index m = 120;
  const core::Instance instance = core::make_instance(
      n, k, m, pooling::paper_design(n), *channel, rng);
  const AmpResult result =
      amp_reconstruct(instance, channel->linearization(n, k, n / 2));
  EXPECT_TRUE(core::exact_success(result.estimate, instance.truth));
}

TEST(AmpRunTest, RecoversZChannelInstance) {
  auto rng = test_rng(6);
  const noise::BitFlipChannel channel(0.1, 0.0);
  const Index n = 500;
  const Index k = 5;
  const Index m = 200;
  const core::Instance instance = core::make_instance(
      n, k, m, pooling::paper_design(n), channel, rng);
  const AmpResult result =
      amp_reconstruct(instance, channel.linearization(n, k, n / 2));
  EXPECT_TRUE(core::exact_success(result.estimate, instance.truth));
}

TEST(AmpRunTest, TauDecreasesOnEasyInstances) {
  auto rng = test_rng(7);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      400, 4, 150, pooling::paper_design(400), *channel, rng);
  const AmpResult result =
      amp_reconstruct(instance, channel->linearization(400, 4, 200));
  ASSERT_GE(result.tau2_history.size(), 2u);
  EXPECT_LT(result.tau2_history.back(), result.tau2_history.front());
}

TEST(AmpRunTest, ConvergesAndStopsEarly) {
  auto rng = test_rng(8);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      300, 3, 120, pooling::paper_design(300), *channel, rng);
  AmpOptions options;
  options.max_iterations = 200;
  const AmpResult result = amp_reconstruct(
      instance, channel->linearization(300, 3, 150), options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 200);
}

TEST(AmpRunTest, EstimateAlwaysHasKOnes) {
  auto rng = test_rng(9);
  const noise::GaussianQueryChannel channel(3.0);
  const core::Instance instance = core::make_instance(
      100, 8, 15, pooling::paper_design(100), channel, rng);
  const AmpResult result =
      amp_reconstruct(instance, channel.linearization(100, 8, 50));
  Index ones = 0;
  for (const Bit b : result.estimate) {
    ones += b;
  }
  EXPECT_EQ(ones, 8);
}

TEST(AmpRunTest, DampingStillConverges) {
  auto rng = test_rng(10);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      300, 3, 120, pooling::paper_design(300), *channel, rng);
  AmpOptions options;
  options.damping = 0.7;
  const AmpResult result = amp_reconstruct(
      instance, channel->linearization(300, 3, 150), options);
  EXPECT_TRUE(core::exact_success(result.estimate, instance.truth));
}

TEST(AmpRunTest, OptionsAreValidated) {
  auto rng = test_rng(11);
  const auto channel = noise::make_noiseless();
  const core::Instance instance = core::make_instance(
      50, 3, 10, pooling::paper_design(50), *channel, rng);
  AmpOptions options;
  options.damping = 0.0;
  EXPECT_THROW((void)amp_reconstruct(
                   instance, channel->linearization(50, 3, 25), options),
               ContractViolation);
  options.damping = 1.0;
  options.max_iterations = 0;
  EXPECT_THROW((void)amp_reconstruct(
                   instance, channel->linearization(50, 3, 25), options),
               ContractViolation);
}

// -------------------------------------------------------- state evolution

TEST(StateEvolutionTest, MseBoundedByPriorVariance) {
  // The Bayes denoiser can never do worse than the prior mean:
  // E[(η − X)²] ≤ Var(X) = π(1−π).
  const BayesBernoulliDenoiser d(0.2);
  for (const double tau2 : {0.01, 0.1, 1.0, 10.0}) {
    const double mse = denoiser_mse(d, 0.2, tau2);
    EXPECT_LE(mse, 0.2 * 0.8 + 1e-9) << "tau2=" << tau2;
    EXPECT_GE(mse, 0.0);
  }
}

TEST(StateEvolutionTest, MseVanishesWithNoise) {
  const BayesBernoulliDenoiser d(0.2);
  EXPECT_LT(denoiser_mse(d, 0.2, 1e-4), 1e-3);
}

TEST(StateEvolutionTest, MseIncreasingInTau) {
  const BayesBernoulliDenoiser d(0.1);
  double prev = 0.0;
  for (const double tau2 : {0.01, 0.05, 0.2, 1.0, 5.0}) {
    const double mse = denoiser_mse(d, 0.1, tau2);
    EXPECT_GE(mse, prev);
    prev = mse;
  }
}

TEST(StateEvolutionTest, NoiselessRecursionCollapses) {
  // With zero measurement noise and enough measurements the fixed point
  // is τ² → 0 (perfect recovery regime).
  StateEvolutionParams params;
  params.pi = 0.01;
  params.n_over_m = 4.0;   // m = n/4, plenty for k/n = 1%
  params.noise_var = 0.0;
  const BayesBernoulliDenoiser d(params.pi);
  const StateEvolutionTrace trace = run_state_evolution(params, d);
  EXPECT_LT(trace.tau2.back(), 1e-8);
}

TEST(StateEvolutionTest, NoiseFloorIsRespected) {
  StateEvolutionParams params;
  params.pi = 0.01;
  params.n_over_m = 4.0;
  params.noise_var = 0.05;
  const BayesBernoulliDenoiser d(params.pi);
  const StateEvolutionTrace trace = run_state_evolution(params, d);
  EXPECT_GE(trace.tau2.back(), params.noise_var);
  EXPECT_LT(trace.tau2.back(), params.noise_var * 1.5);
}

TEST(StateEvolutionTest, PredictsEmpiricalTauOnEasyInstance) {
  // The empirical ‖z‖²/m trace should follow the SE prediction within a
  // finite-size tolerance on a noiseless instance.
  auto rng = test_rng(12);
  const auto channel = noise::make_noiseless();
  const Index n = 1000;
  const Index k = 10;
  const Index m = 300;
  const core::Instance instance = core::make_instance(
      n, k, m, pooling::paper_design(n), *channel, rng);
  const AmpProblem problem =
      standardize(instance, channel->linearization(n, k, n / 2));
  const BayesBernoulliDenoiser d(problem.pi);
  const AmpResult amp = run_amp(problem, d);

  StateEvolutionParams params;
  params.pi = problem.pi;
  params.n_over_m = static_cast<double>(n) / static_cast<double>(m);
  params.noise_var = problem.effective_noise_var;
  const StateEvolutionTrace se = run_state_evolution(params, d);

  // Compare the first iteration's tau² (before error feedback builds up).
  ASSERT_GE(amp.tau2_history.size(), 2u);
  ASSERT_GE(se.tau2.size(), 2u);
  EXPECT_NEAR(amp.tau2_history[0] / se.tau2[0], 1.0, 0.25);
  EXPECT_NEAR(amp.tau2_history[1] / se.tau2[1], 1.0, 0.5);
}

TEST(StateEvolutionTest, ParamsAreValidated) {
  const BayesBernoulliDenoiser d(0.1);
  StateEvolutionParams params;
  params.pi = 0.0;
  params.n_over_m = 1.0;
  EXPECT_THROW((void)run_state_evolution(params, d), ContractViolation);
  params.pi = 0.1;
  params.n_over_m = 0.0;
  EXPECT_THROW((void)run_state_evolution(params, d), ContractViolation);
}

}  // namespace
}  // namespace npd::amp
