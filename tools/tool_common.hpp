#pragma once

/// \file tool_common.hpp
/// The output conventions shared by the tool drivers (npd_run,
/// npd_merge): a report path of "-" or "" streams the JSON to stdout —
/// in which case the human-readable summary must move to stderr so
/// `| python3 -m json.tool` keeps working.

#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "engine/engine.hpp"
#include "shard/result_cache.hpp"
#include "shard/runner.hpp"
#include "util/file.hpp"
#include "util/parse.hpp"

namespace npd::tools {

/// Parse one "scenario.key=value" override — the `--params` entry format
/// shared by npd_run and npd_launch.
[[nodiscard]] inline engine::ParamOverride parse_override(
    const std::string& entry) {
  const std::size_t dot = entry.find('.');
  const std::size_t eq = entry.find('=');
  if (dot == std::string::npos || eq == std::string::npos || dot > eq ||
      dot == 0 || dot + 1 == eq || eq + 1 == entry.size()) {
    throw std::invalid_argument("malformed --params entry '" + entry +
                                "' (expected scenario.key=value)");
  }
  return engine::ParamOverride{entry.substr(0, dot),
                               entry.substr(dot + 1, eq - dot - 1),
                               entry.substr(eq + 1)};
}

/// Build the batch request both drivers run: expand "all", adopt the
/// engine config, parse the `--params` overrides.
[[nodiscard]] inline engine::BatchRequest make_batch_request(
    const engine::ScenarioRegistry& registry,
    const std::string& scenarios_arg, long long reps, long long seed,
    long long threads, const std::string& params_arg) {
  engine::BatchRequest request;
  if (scenarios_arg == "all") {
    for (const engine::Scenario* scenario : registry.list()) {
      request.scenario_names.push_back(scenario->name());
    }
  } else {
    request.scenario_names = split_list(scenarios_arg, ',');
  }
  request.config.seed = static_cast<std::uint64_t>(seed);
  request.config.reps = static_cast<Index>(reps);
  request.config.threads = static_cast<Index>(threads);
  for (const std::string& entry : split_list(params_arg, ',')) {
    request.overrides.push_back(parse_override(entry));
  }
  return request;
}

/// Usage rails for the shared cache-GC flags.  The upper bound (8 EiB
/// would overflow; 8 TiB is already beyond any cache this writes) keeps
/// the MiB→bytes conversion below from overflowing int64 on a pasted
/// seed — the same input class the --shard/--procs rails reject.
inline void validate_cache_gc_flags(bool cache_gc, long long cache_max_mb,
                                    const std::string& cache_dir) {
  if ((cache_gc || cache_max_mb > 0) && cache_dir.empty()) {
    throw std::invalid_argument(
        "--cache-gc/--cache-max-mb need --cache DIR (there is no cache "
        "to collect without one)");
  }
  constexpr long long kMaxCacheMb = 8LL * 1024 * 1024;  // 8 TiB
  if (cache_max_mb < 0 || cache_max_mb > kMaxCacheMb) {
    throw std::invalid_argument(
        "--cache-max-mb: need a cap in [0, " +
        std::to_string(kMaxCacheMb) + "] MiB, got " +
        std::to_string(cache_max_mb));
  }
}

/// The shared `--cache-gc` / `--cache-max-mb` pass of npd_run and
/// npd_launch: the live set is the *whole* plan's job keys — all
/// shards' — so no process can ever collect a sibling's fresh results.
/// No-op unless one of the flags is active.  The summary line's wording
/// is a contract: CI and the launcher-roundtrip ctest grep for it.
inline void collect_cache_gc(const engine::BatchPlan& plan,
                             const std::string& cache_dir, bool cache_gc,
                             long long cache_max_mb, FILE* summary) {
  if (cache_dir.empty() || (!cache_gc && cache_max_mb == 0)) {
    return;
  }
  shard::CacheGcPolicy policy;
  policy.drop_foreign = cache_gc;
  policy.max_bytes = static_cast<Index>(cache_max_mb) * 1024 * 1024;
  policy.live_keys.reserve(plan.jobs.size());
  for (Index j = 0; j < static_cast<Index>(plan.jobs.size()); ++j) {
    policy.live_keys.push_back(shard::job_cache_key(plan, j));
  }
  const shard::ResultCache cache(cache_dir);
  const shard::CacheGcStats stats = cache.gc(policy);
  std::fprintf(summary,
               "cache GC: kept %lld entr%s (%lld bytes), dropped %lld "
               "(%lld bytes)\n",
               static_cast<long long>(stats.kept),
               stats.kept == 1 ? "y" : "ies",
               static_cast<long long>(stats.bytes_kept),
               static_cast<long long>(stats.dropped),
               static_cast<long long>(stats.bytes_dropped));
}

/// Slurp a whole file via util's shared reader.  Throws
/// `std::runtime_error` when the file cannot be opened or the read
/// fails partway (a truncated buffer must not be handed to a parser as
/// if it were the document).
[[nodiscard]] inline std::string read_file(const std::string& path) {
  std::optional<std::string> text = try_read_file(path);
  if (!text.has_value()) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  return *std::move(text);
}

/// True when `out_path` selects stdout ("-" is the conventional
/// spelling; the historical "" keeps working).
[[nodiscard]] inline bool writes_to_stdout(const std::string& out_path) {
  return out_path.empty() || out_path == "-";
}

/// Where the human-readable summary goes without corrupting the report.
[[nodiscard]] inline FILE* summary_stream(const std::string& out_path) {
  return writes_to_stdout(out_path) ? stderr : stdout;
}

/// Write `json` to `out_path` (stdout per `writes_to_stdout`).  Returns
/// false — after printing an error — when the file cannot be opened.
[[nodiscard]] inline bool write_output(const std::string& json,
                                       const std::string& out_path) {
  if (writes_to_stdout(out_path)) {
    std::printf("%s\n", json.c_str());
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 out_path.c_str());
    return false;
  }
  out << json << '\n';
  return true;
}

}  // namespace npd::tools
