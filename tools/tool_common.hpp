#pragma once

/// \file tool_common.hpp
/// The output conventions shared by the tool drivers (npd_run,
/// npd_merge): a report path of "-" or "" streams the JSON to stdout —
/// in which case the human-readable summary must move to stderr so
/// `| python3 -m json.tool` keeps working.

#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/file.hpp"

namespace npd::tools {

/// Slurp a whole file via util's shared reader.  Throws
/// `std::runtime_error` when the file cannot be opened or the read
/// fails partway (a truncated buffer must not be handed to a parser as
/// if it were the document).
[[nodiscard]] inline std::string read_file(const std::string& path) {
  std::optional<std::string> text = try_read_file(path);
  if (!text.has_value()) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  return *std::move(text);
}

/// True when `out_path` selects stdout ("-" is the conventional
/// spelling; the historical "" keeps working).
[[nodiscard]] inline bool writes_to_stdout(const std::string& out_path) {
  return out_path.empty() || out_path == "-";
}

/// Where the human-readable summary goes without corrupting the report.
[[nodiscard]] inline FILE* summary_stream(const std::string& out_path) {
  return writes_to_stdout(out_path) ? stderr : stdout;
}

/// Write `json` to `out_path` (stdout per `writes_to_stdout`).  Returns
/// false — after printing an error — when the file cannot be opened.
[[nodiscard]] inline bool write_output(const std::string& json,
                                       const std::string& out_path) {
  if (writes_to_stdout(out_path)) {
    std::printf("%s\n", json.c_str());
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 out_path.c_str());
    return false;
  }
  out << json << '\n';
  return true;
}

}  // namespace npd::tools
