# Runs npd_lint against the fixture mini-trees under tests/lint_fixtures
# and asserts each bad_* tree fails with the expected rule id + file,
# while the clean tree (full of near-misses) passes.
#
# Invoked by the `lint.fixtures` ctest:
#   cmake -DNPD_LINT=<binary> -DFIXTURES=<dir> -P npd_lint_fixture_test.cmake

if(NOT NPD_LINT OR NOT FIXTURES)
  message(FATAL_ERROR "need -DNPD_LINT=... and -DFIXTURES=...")
endif()

# check_fixture(<dir> <expected-exit> <regex-that-must-match-stdout>...)
# A pattern starting with "!" is negated: the rest must NOT match.
function(check_fixture dir expected_exit)
  execute_process(
    COMMAND ${NPD_LINT} --root ${FIXTURES}/${dir}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE output
    ERROR_VARIABLE error_output)
  if(NOT exit_code EQUAL expected_exit)
    message(FATAL_ERROR
      "fixture '${dir}': expected exit ${expected_exit}, got ${exit_code}\n"
      "stdout:\n${output}\nstderr:\n${error_output}")
  endif()
  foreach(pattern IN LISTS ARGN)
    if(pattern MATCHES "^!(.*)$")
      if(output MATCHES "${CMAKE_MATCH_1}")
        message(FATAL_ERROR
          "fixture '${dir}': output must NOT match '${CMAKE_MATCH_1}'\n"
          "stdout:\n${output}")
      endif()
    elseif(NOT output MATCHES "${pattern}")
      message(FATAL_ERROR
        "fixture '${dir}': output does not match '${pattern}'\n"
        "stdout:\n${output}")
    endif()
  endforeach()
  message(STATUS "fixture '${dir}': OK")
endfunction()

# Every banned-construct and layering-violation class, one tree each.
check_fixture(bad_layering 1
  "src/util/uses_engine.cpp:[0-9]+: \\[layering\\].*engine"
  "src/solve/uses_shard.cpp:[0-9]+: \\[layering\\].*shard")
# The serve module's edges: engine below it may not look up, and serve
# itself may not reach sideways into shard.
check_fixture(bad_layering_serve 1
  "src/engine/uses_serve.cpp:[0-9]+: \\[layering\\].*serve"
  "src/serve/uses_shard.cpp:[0-9]+: \\[layering\\].*shard")
check_fixture(bad_rand 1
  "src/core/uses_rand.cpp:[0-9]+: \\[no-std-rand\\].*std::rand"
  "src/core/uses_rand.cpp:[0-9]+: \\[no-std-rand\\].*srand"
  "src/core/uses_rand.cpp:[0-9]+: \\[no-std-rand\\].*random_device")
check_fixture(bad_clock 1
  "src/pooling/uses_clock.cpp:[0-9]+: \\[no-wall-clock\\].*time"
  "src/pooling/uses_clock.cpp:[0-9]+: \\[no-wall-clock\\].*system_clock")
# The wall-clock allowlist is exactly the four telemetry TUs
# src/util/{trace,heartbeat,metrics,profiler}.cpp: those read the clock
# without findings, any sibling still fires.
check_fixture(bad_clock_telemetry 1
  "src/util/clock_sneaks_in.cpp:[0-9]+: \\[no-wall-clock\\].*system_clock"
  "!src/util/trace.cpp:[0-9]+: \\[no-wall-clock\\]"
  "!src/util/heartbeat.cpp:[0-9]+: \\[no-wall-clock\\]")
check_fixture(bad_clock_metrics 1
  "src/util/counters_sneak_clock.cpp:[0-9]+: \\[no-wall-clock\\].*system_clock"
  "!src/util/metrics.cpp:[0-9]+: \\[no-wall-clock\\]"
  "!src/util/profiler.cpp:[0-9]+: \\[no-wall-clock\\]")
check_fixture(bad_unordered 1
  "src/engine/report.cpp:[0-9]+: \\[no-unordered-iteration\\].*totals")
check_fixture(bad_float 1
  "src/harness/stats.cpp:[0-9]+: \\[no-float-accumulator\\]")

# The clean tree packs the near-misses (commented-out bans, banned
# tokens in strings, membership-only unordered use) — zero findings.
check_fixture(clean 0 "npd_lint: OK")
