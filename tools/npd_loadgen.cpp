// npd_loadgen — the serving load generator and protocol client.
//
// Drives an npd_serve daemon in closed loop (`--concurrency` workers,
// each sending the next request as soon as the previous response
// lands) or open loop (`--qps` paced arrivals regardless of response
// times), records a latency histogram, and writes an npd.serve_stats/1
// report with throughput and p50/p95/p99.
//
//   npd_loadgen --socket /tmp/npd.sock --concurrency 8 --duration 5
//   npd_loadgen --tcp 47000 --qps 500 --duration 10
//               --mix "solver_sweep:3:n_lo=80;n_hi=80,abl1:1"
//
// It is also the protocol's scriptable client: `--probe FILE` sends the
// request document(s) in FILE verbatim (pipelined when FILE holds an
// array) and writes the responses; `--probe-abort` disconnects right
// after sending (the killed-mid-request client of tools.serve_roundtrip);
// `--extract-report` peels the `report` member out of a response so it
// can be `cmp`ed against an offline `npd_run --no-perf` report;
// `--send-shutdown` asks the daemon to drain and exit.

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rand/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/heartbeat.hpp"
#include "util/parse.hpp"
#include "util/socket.hpp"
#include "util/timer.hpp"

namespace {

using namespace npd;

/// One entry of the request mix.
struct MixEntry {
  std::string scenario;
  long long weight = 1;
  std::string params;
};

/// Parse one `--mix` entry: `scenario[:weight[:params]]` (params last,
/// so packed `key=value;...` strings pass through unsplit).
MixEntry parse_mix_entry(const std::string& entry) {
  MixEntry mix;
  const std::size_t first = entry.find(':');
  if (first == std::string::npos) {
    mix.scenario = entry;
  } else {
    mix.scenario = entry.substr(0, first);
    const std::size_t second = entry.find(':', first + 1);
    const std::string weight_text =
        entry.substr(first + 1, second == std::string::npos
                                    ? std::string::npos
                                    : second - first - 1);
    mix.weight = parse_int_value("--mix weight", weight_text);
    if (second != std::string::npos) {
      mix.params = entry.substr(second + 1);
    }
  }
  if (mix.scenario.empty() || mix.weight < 1) {
    throw std::invalid_argument("malformed --mix entry '" + entry +
                                "' (expected scenario[:weight[:params]])");
  }
  return mix;
}

struct Endpoint {
  std::string socket_path;
  int tcp_port = -1;
};

net::Fd connect_endpoint(const Endpoint& endpoint) {
  if (!endpoint.socket_path.empty()) {
    return net::connect_unix(endpoint.socket_path);
  }
  return net::connect_tcp_localhost(endpoint.tcp_port);
}

/// Poll the daemon with pings until it answers (fresh connection per
/// attempt — the daemon may not be listening yet at all).
void wait_ready(const Endpoint& endpoint, double timeout_ms) {
  const Timer timer;
  std::string last_error = "timed out";
  while (timer.elapsed_ms() < timeout_ms) {
    try {
      const net::Fd fd = connect_endpoint(endpoint);
      Json ping = Json::object();
      ping.set("schema", std::string(serve::kRequestSchema));
      ping.set("id", "ready-probe");
      ping.set("op", "ping");
      if (net::write_frame(fd, ping.dump())) {
        const std::optional<std::string> reply = net::read_frame(fd);
        if (reply.has_value()) {
          return;
        }
      }
      last_error = "connected but no ping reply";
    } catch (const std::exception& error) {
      last_error = error.what();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  throw std::runtime_error("npd_loadgen: server not ready after " +
                           std::to_string(timeout_ms) + " ms (" +
                           last_error + ")");
}

/// Deterministic mix choice for request `seq`.
const MixEntry& pick_mix(const std::vector<MixEntry>& mix,
                         long long total_weight, std::uint64_t seed,
                         std::int64_t seq) {
  if (mix.size() == 1) {
    return mix.front();
  }
  const std::uint64_t draw =
      rand::splitmix64(seed ^ rand::splitmix64(
                                  static_cast<std::uint64_t>(seq))) %
      static_cast<std::uint64_t>(total_weight);
  std::uint64_t cumulative = 0;
  for (const MixEntry& entry : mix) {
    cumulative += static_cast<std::uint64_t>(entry.weight);
    if (draw < cumulative) {
      return entry;
    }
  }
  return mix.back();
}

std::string build_request_json(const std::string& id_prefix,
                               std::int64_t seq, const MixEntry& mix,
                               long long reps, long long fixed_seed) {
  Json request = Json::object();
  request.set("schema", std::string(serve::kRequestSchema));
  request.set("id", id_prefix + "-" + std::to_string(seq));
  request.set("op", "solve");
  request.set("scenario", mix.scenario);
  if (!mix.params.empty()) {
    request.set("params", mix.params);
  }
  if (reps != 1) {
    request.set("reps", reps);
  }
  if (fixed_seed >= 0) {
    request.set("seed", fixed_seed);
  }
  return request.dump();
}

/// True when the response parses as npd.response/1 with status "ok".
bool response_ok(const std::string& payload) {
  try {
    const Json doc = Json::parse(payload);
    const Json* status = doc.find("status");
    return status != nullptr && status->is_string() &&
           status->as_string() == "ok";
  } catch (const std::exception&) {
    return false;
  }
}

struct LoadConfig {
  Endpoint endpoint;
  std::vector<MixEntry> mix;
  long long total_weight = 0;
  Index concurrency = 4;
  double duration_s = 5.0;
  std::int64_t max_requests = 0;  // 0 = duration-bound only
  double qps = 0.0;               // > 0 selects the open loop
  long long reps = 1;
  long long fixed_seed = -1;
  std::string id_prefix = "req";
  std::uint64_t mix_seed = 1;
  heartbeat::ProgressCounters* progress = nullptr;
};

/// Per-worker tallies, merged after the join.
struct WorkerResult {
  serve::LatencyRecorder latency;
  serve::TimelineRecorder timeline;
  Index ok = 0;
  Index errors = 0;
};

/// Closed loop: each worker owns one connection and keeps exactly one
/// request in flight.
void closed_worker(const LoadConfig& config, const Timer& clock,
                   std::atomic<std::int64_t>& next_seq,
                   WorkerResult& result) {
  const net::Fd fd = connect_endpoint(config.endpoint);
  while (clock.elapsed_seconds() < config.duration_s) {
    const std::int64_t seq = next_seq.fetch_add(1);
    if (config.max_requests > 0 && seq >= config.max_requests) {
      return;
    }
    const MixEntry& mix = pick_mix(config.mix, config.total_weight,
                                   config.mix_seed, seq);
    const std::string payload = build_request_json(
        config.id_prefix, seq, mix, config.reps, config.fixed_seed);
    const Timer request_timer;
    if (!net::write_frame(fd, payload)) {
      ++result.errors;
      return;  // server gone
    }
    const std::optional<std::string> reply = net::read_frame(fd);
    if (!reply.has_value()) {
      ++result.errors;
      return;
    }
    const double latency_s = request_timer.elapsed_seconds();
    result.latency.record(latency_s);
    result.timeline.record(clock.elapsed_seconds(), latency_s);
    if (response_ok(*reply)) {
      ++result.ok;
    } else {
      ++result.errors;
    }
    if (config.progress != nullptr) {
      config.progress->add_done(1);
    }
  }
}

/// Open loop: each worker paces `qps / concurrency` arrivals on its own
/// connection; a receiver thread matches responses to send times by
/// request id, so a slow response never holds back the arrival process.
void open_worker(const LoadConfig& config, Index worker, const Timer& clock,
                 std::atomic<std::int64_t>& next_seq, WorkerResult& result) {
  const net::Fd fd = connect_endpoint(config.endpoint);
  const double worker_qps =
      config.qps / static_cast<double>(config.concurrency);
  const double period_s = 1.0 / worker_qps;

  std::mutex in_flight_mutex;
  std::map<std::string, double> in_flight;  // id -> send time (clock s)
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    while (true) {
      const std::optional<std::string> reply = net::read_frame(fd);
      if (!reply.has_value()) {
        return;
      }
      const double now_s = clock.elapsed_seconds();
      std::string id;
      bool ok = false;
      try {
        const Json doc = Json::parse(*reply);
        const Json* id_member = doc.find("id");
        if (id_member != nullptr && id_member->is_string()) {
          id = id_member->as_string();
        }
        const Json* status = doc.find("status");
        ok = status != nullptr && status->is_string() &&
             status->as_string() == "ok";
      } catch (const std::exception&) {
      }
      double sent_s = -1.0;
      {
        const std::lock_guard<std::mutex> lock(in_flight_mutex);
        const auto it = in_flight.find(id);
        if (it != in_flight.end()) {
          sent_s = it->second;
          in_flight.erase(it);
        }
      }
      if (sent_s >= 0.0) {
        result.latency.record(now_s - sent_s);
        result.timeline.record(now_s, now_s - sent_s);
      }
      if (ok) {
        ++result.ok;
      } else {
        ++result.errors;
      }
      if (config.progress != nullptr) {
        config.progress->add_done(1);
      }
      bool drained = false;
      {
        const std::lock_guard<std::mutex> lock(in_flight_mutex);
        drained = sender_done.load() && in_flight.empty();
      }
      if (drained) {
        return;
      }
    }
  });

  // Deterministic arrival schedule: worker w sends at offsets
  // (w + k*concurrency) / qps — a uniform interleave across workers.
  double next_send_s =
      static_cast<double>(worker) / config.qps;
  bool peer_gone = false;
  Index send_errors = 0;  // folded in after the receiver joins (no race)
  while (clock.elapsed_seconds() < config.duration_s) {
    const double wait_s = next_send_s - clock.elapsed_seconds();
    if (wait_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
      continue;
    }
    next_send_s += period_s;
    const std::int64_t seq = next_seq.fetch_add(1);
    if (config.max_requests > 0 && seq >= config.max_requests) {
      break;
    }
    const MixEntry& mix = pick_mix(config.mix, config.total_weight,
                                   config.mix_seed, seq);
    const std::string id = config.id_prefix + "-" + std::to_string(seq);
    const std::string payload = build_request_json(
        config.id_prefix, seq, mix, config.reps, config.fixed_seed);
    {
      const std::lock_guard<std::mutex> lock(in_flight_mutex);
      in_flight[id] = clock.elapsed_seconds();
    }
    if (!net::write_frame(fd, payload)) {
      peer_gone = true;
      ++send_errors;
      const std::lock_guard<std::mutex> lock(in_flight_mutex);
      in_flight.erase(id);
      break;
    }
  }
  sender_done.store(true);

  // Drain window: give outstanding responses a moment, then half-close
  // so the receiver unblocks even if the server lost them.
  const Timer drain_timer;
  while (!peer_gone && drain_timer.elapsed_seconds() < 2.0) {
    {
      const std::lock_guard<std::mutex> lock(in_flight_mutex);
      if (in_flight.empty()) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  (void)::shutdown(fd.get(), SHUT_RDWR);
  receiver.join();
  result.errors += send_errors;
  {
    const std::lock_guard<std::mutex> lock(in_flight_mutex);
    result.errors += static_cast<Index>(in_flight.size());  // lost in drain
  }
}

/// `--probe`: send the document(s) in `path` verbatim (array =
/// pipelined burst) and collect the responses by id.
int run_probe(const Endpoint& endpoint, const std::string& path,
              bool probe_abort, const std::string& out_path,
              const std::string& extract_report_path, bool quiet) {
  const Json doc = Json::parse(tools::read_file(path));
  std::vector<Json> requests;
  if (doc.is_array()) {
    for (std::size_t i = 0; i < doc.size(); ++i) {
      requests.push_back(doc.at(i));
    }
  } else {
    requests.push_back(doc);
  }
  if (requests.empty()) {
    throw std::invalid_argument("--probe: no requests in '" + path + "'");
  }

  net::Fd fd = connect_endpoint(endpoint);
  for (const Json& request : requests) {
    if (!net::write_frame(fd, request.dump())) {
      throw std::runtime_error("--probe: server closed the connection");
    }
  }
  if (probe_abort) {
    // The killed-mid-request client: vanish with responses pending and
    // let the daemon prove it survives the dead peer.
    fd.close();
    if (!quiet) {
      (void)std::fprintf(stderr,
                         "npd_loadgen: sent %zu request%s and aborted "
                         "the connection (--probe-abort)\n",
                         requests.size(), requests.size() == 1 ? "" : "s");
    }
    return 0;
  }

  std::map<std::string, Json> by_id;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::optional<std::string> reply = net::read_frame(fd);
    if (!reply.has_value()) {
      throw std::runtime_error("--probe: connection closed after " +
                               std::to_string(i) + " of " +
                               std::to_string(requests.size()) +
                               " responses");
    }
    Json response = Json::parse(*reply);
    const Json* id = response.find("id");
    by_id[id != nullptr && id->is_string() ? id->as_string()
                                           : std::to_string(i)] =
        std::move(response);
  }

  // Emit in request order (responses may interleave across batches).
  Json output;
  if (doc.is_array()) {
    output = Json::array();
    for (const Json& request : requests) {
      const Json* id = request.find("id");
      const auto it =
          by_id.find(id != nullptr && id->is_string() ? id->as_string() : "");
      output.push_back(it != by_id.end() ? it->second : Json());
    }
  } else {
    output = by_id.begin()->second;
  }
  if (!tools::write_output(output.dump(2), out_path)) {
    return 1;
  }

  if (!extract_report_path.empty()) {
    const Json& first = doc.is_array() ? output.at(0) : output;
    const Json* report = first.find("report");
    if (report == nullptr) {
      const Json* error = first.find("error");
      throw std::runtime_error(
          "--extract-report: response has no report (" +
          std::string(error != nullptr && error->is_string()
                          ? error->as_string()
                          : "status not ok") +
          ")");
    }
    if (!tools::write_output(report->dump(2), extract_report_path)) {
      return 1;
    }
  }
  return 0;
}

int send_shutdown(const Endpoint& endpoint, bool quiet) {
  const net::Fd fd = connect_endpoint(endpoint);
  Json request = Json::object();
  request.set("schema", std::string(serve::kRequestSchema));
  request.set("id", "ctl-shutdown");
  request.set("op", "shutdown");
  if (!net::write_frame(fd, request.dump())) {
    throw std::runtime_error("--send-shutdown: server unreachable");
  }
  const std::optional<std::string> reply = net::read_frame(fd);
  if (!reply.has_value()) {
    throw std::runtime_error("--send-shutdown: no acknowledgement");
  }
  if (!quiet) {
    (void)std::fprintf(stderr, "npd_loadgen: shutdown acknowledged\n");
  }
  return 0;
}

int run(int argc, char** argv) {
  CliParser cli("npd_loadgen",
                "Load generator and protocol client for npd_serve: "
                "closed/open-loop traffic with latency percentiles "
                "(npd.serve_stats/1), plus scripted probe requests.");
  const std::string& socket_path =
      cli.add_string("socket", "", "connect to this Unix-domain socket");
  const long long& tcp_port = cli.add_int(
      "tcp", -1, "connect to this localhost TCP port (when no --socket)");
  const long long& concurrency =
      cli.add_int("concurrency", 4, "worker connections");
  const double& duration =
      cli.add_double("duration", 5.0, "measurement window in seconds");
  const long long& max_requests = cli.add_int(
      "requests", 0, "stop after this many requests (0 = duration-bound)");
  const double& qps = cli.add_double(
      "qps", 0.0, "open-loop arrival rate (0 = closed loop: each worker "
      "keeps one request in flight)");
  const std::string& mix_arg = cli.add_string(
      "mix", "solver_sweep:1:n_lo=80;n_hi=80",
      "request mix: scenario[:weight[:params]][,...] with packed params "
      "key=value;...");
  const long long& reps =
      cli.add_int("reps", 1, "repetitions per request");
  const long long& fixed_seed = cli.add_int(
      "seed", -1, "explicit per-request seed (-1 = let the server derive "
      "one per request id)");
  const long long& mix_seed = cli.add_int(
      "mix-seed", 1, "seed for the deterministic mix choice per request");
  const std::string& id_prefix =
      cli.add_string("id-prefix", "req", "request id prefix");
  const double& wait_ready_ms = cli.add_double(
      "wait-ready-ms", 2000.0, "ping until the server answers, up to "
      "this long, before generating load (0 = no wait)");
  const std::string& out_path = cli.add_string(
      "out", "npd_loadgen_stats.json",
      "npd.serve_stats/1 report path ('-' streams to stdout); in "
      "--probe mode, the response document(s)");
  const std::string& probe_path = cli.add_string(
      "probe", "", "send the npd.request/1 document(s) in this file "
      "verbatim (array = pipelined burst) instead of generating load");
  const bool& probe_abort = cli.add_flag(
      "probe-abort", "with --probe: disconnect right after sending, "
      "without reading responses (daemon-survival test)");
  const std::string& extract_report = cli.add_string(
      "extract-report", "", "with --probe: write the first response's "
      "'report' member here (pretty-printed, npd_run --no-perf bytes)");
  const bool& shutdown_flag = cli.add_flag(
      "send-shutdown", "send an op:\"shutdown\" request and exit");
  const std::string& heartbeat_path = cli.add_string(
      "heartbeat", "", "write live progress (schema npd.heartbeat/1): "
      "responses count as jobs done");
  const bool& quiet = cli.add_flag(
      "quiet", "suppress the end-of-run summary line (errors still "
      "print)");
  cli.parse(argc, argv);

  Endpoint endpoint;
  endpoint.socket_path = socket_path;
  endpoint.tcp_port = static_cast<int>(tcp_port);
  if (socket_path.empty() && tcp_port < 0) {
    throw std::invalid_argument("need an endpoint: --socket PATH or "
                                "--tcp PORT");
  }
  if (concurrency < 1) {
    throw std::invalid_argument("--concurrency: need at least 1 worker");
  }
  if (qps < 0.0) {
    throw std::invalid_argument("--qps: need a non-negative rate");
  }

  if (wait_ready_ms > 0.0) {
    wait_ready(endpoint, wait_ready_ms);
  }
  if (shutdown_flag) {
    return send_shutdown(endpoint, quiet);
  }
  if (!probe_path.empty()) {
    return run_probe(endpoint, probe_path, probe_abort, out_path,
                     extract_report, quiet);
  }

  LoadConfig config;
  config.endpoint = endpoint;
  for (const std::string& entry : split_list(mix_arg, ',')) {
    config.mix.push_back(parse_mix_entry(entry));
  }
  if (config.mix.empty()) {
    throw std::invalid_argument("--mix: need at least one entry");
  }
  for (const MixEntry& entry : config.mix) {
    config.total_weight += entry.weight;
  }
  config.concurrency = static_cast<Index>(concurrency);
  config.duration_s = duration;
  config.max_requests = max_requests;
  config.qps = qps;
  config.reps = reps;
  config.fixed_seed = fixed_seed;
  config.id_prefix = id_prefix;
  config.mix_seed = static_cast<std::uint64_t>(mix_seed);

  heartbeat::ProgressCounters progress;
  std::optional<heartbeat::HeartbeatWriter> beat_writer;
  if (!heartbeat_path.empty()) {
    if (max_requests > 0) {
      progress.set_jobs_total(max_requests);
    } else if (qps > 0.0) {
      progress.set_jobs_total(
          static_cast<std::int64_t>(qps * duration));
    }
    config.progress = &progress;
    beat_writer.emplace(heartbeat_path, 0, 1, progress);
  }

  const Timer clock;
  std::atomic<std::int64_t> next_seq{0};
  std::vector<WorkerResult> results(
      static_cast<std::size_t>(config.concurrency));
  std::vector<std::thread> workers;
  workers.reserve(results.size());
  for (Index w = 0; w < config.concurrency; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& result = results[static_cast<std::size_t>(w)];
      try {
        if (config.qps > 0.0) {
          open_worker(config, w, clock, next_seq, result);
        } else {
          closed_worker(config, clock, next_seq, result);
        }
      } catch (const std::exception& error) {
        ++result.errors;
        (void)std::fprintf(stderr, "npd_loadgen: worker %lld: %s\n",
                           static_cast<long long>(w), error.what());
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double wall_s = clock.elapsed_seconds();
  if (beat_writer.has_value()) {
    beat_writer->stop();
  }

  serve::LoadStats stats;
  stats.mode = config.qps > 0.0 ? "open" : "closed";
  stats.concurrency = config.concurrency;
  stats.target_qps = config.qps;
  stats.duration_seconds = wall_s;
  for (const WorkerResult& result : results) {
    stats.ok += result.ok;
    stats.errors += result.errors;
    stats.latency.merge(result.latency);
    stats.timeline.merge(result.timeline);
  }
  stats.requests = stats.ok + stats.errors;

  if (!tools::write_output(serve::serve_stats_json(stats).dump(2),
                           out_path)) {
    return 1;
  }
  if (!quiet) {
    (void)std::fprintf(
        stderr,
        "npd_loadgen: %lld requests (%lld ok, %lld errors) in %.2f s, "
        "%.1f req/s, p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
        static_cast<long long>(stats.requests),
        static_cast<long long>(stats.ok),
        static_cast<long long>(stats.errors), wall_s,
        wall_s > 0.0 ? static_cast<double>(stats.requests) / wall_s : 0.0,
        stats.latency.percentile_ms(0.50), stats.latency.percentile_ms(0.95),
        stats.latency.percentile_ms(0.99));
    if (!tools::writes_to_stdout(out_path)) {
      (void)std::fprintf(stderr, "[stats written to %s]\n",
                         out_path.c_str());
    }
  }
  return stats.errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    (void)std::fprintf(stderr, "npd_loadgen: %s\n", error.what());
    return 2;
  }
}
