// npd_run — the unified batch experiment driver.
//
// Lists the registered scenarios, runs any subset of them by name on the
// engine's shared worker pool, and writes one JSON run report
// (schema npd.run_report/1, see src/engine/report.hpp) per batch.
//
//   npd_run --list
//   npd_run --scenarios fig5,abl7 --reps 2 --threads 4 --seed 42
//           --params fig5.max_n=1000,abl7.max_n=500 --out report.json
//
// Per-scenario aggregates are bit-identical for every --threads value;
// only the perf stamps (wall clock, jobs/sec) vary.  --no-perf omits
// them, making the whole report byte-reproducible.

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"
#include "solve/reconstructor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace npd;

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    std::string_view part = text.substr(0, pos);
    while (!part.empty() && part.front() == ' ') {
      part.remove_prefix(1);
    }
    while (!part.empty() && part.back() == ' ') {
      part.remove_suffix(1);
    }
    if (!part.empty()) {
      parts.emplace_back(part);
    }
    if (pos == std::string_view::npos) {
      break;
    }
    text.remove_prefix(pos + 1);
  }
  return parts;
}

/// Parse one "scenario.key=value" override.
engine::ParamOverride parse_override(const std::string& entry) {
  const std::size_t dot = entry.find('.');
  const std::size_t eq = entry.find('=');
  if (dot == std::string::npos || eq == std::string::npos || dot > eq ||
      dot == 0 || dot + 1 == eq || eq + 1 == entry.size()) {
    throw std::invalid_argument("malformed --params entry '" + entry +
                                "' (expected scenario.key=value)");
  }
  return engine::ParamOverride{entry.substr(0, dot),
                               entry.substr(dot + 1, eq - dot - 1),
                               entry.substr(eq + 1)};
}

void print_param_specs(const std::string& owner,
                       const std::vector<ParamSpec>& specs) {
  for (const ParamSpec& spec : specs) {
    std::printf("      %s.%s = %s  (%s)\n", owner.c_str(),
                spec.name.c_str(), spec.default_value.c_str(),
                spec.help.c_str());
  }
}

void print_scenario_list(const engine::ScenarioRegistry& registry) {
  std::printf("Registered scenarios:\n\n");
  for (const engine::Scenario* scenario : registry.list()) {
    std::printf("  %-18s %s\n", scenario->name().c_str(),
                scenario->description().c_str());
    print_param_specs(scenario->name(), scenario->params());
  }
  std::printf(
      "\nRun a subset with --scenarios a,b,c; override parameters with\n"
      "--params scenario.key=value[,scenario.key=value...].\n"
      "Solver-generic scenarios select their algorithm with\n"
      "--params <scenario>.solver=<name> (see --list-solvers).\n");
}

void print_solver_list() {
  std::printf("Registered solvers:\n\n");
  for (const solve::SolverFactory* factory : solve::builtin_solvers().list()) {
    std::printf("  %-20s %s\n", factory->name().c_str(),
                factory->description().c_str());
    print_param_specs(factory->name(), factory->params());
  }
  std::printf(
      "\nSelect one per scenario with --params <scenario>.solver=<name>;\n"
      "pass its options with\n"
      "--params <scenario>.solver_params=key=value[;key=value...].\n");
}

int run(int argc, char** argv) {
  CliParser cli("npd_run",
                "Unified batch experiment driver: runs registered "
                "scenarios and writes a JSON run report.");
  const bool& list = cli.add_flag(
      "list", "list scenarios (with parameter defaults and help) and exit");
  const bool& list_solvers = cli.add_flag(
      "list-solvers",
      "list registered solvers (with option defaults and help) and exit");
  const std::string& scenarios_arg = cli.add_string(
      "scenarios", "all", "comma-separated scenario names, or 'all'");
  const long long& reps =
      cli.add_int("reps", 1, "repetitions per grid cell");
  const long long& seed =
      cli.add_int("seed", 42, "base seed for all derived job streams");
  const long long& threads = cli.add_int(
      "threads", 0,
      "worker threads (0 = all cores; aggregates are identical for any "
      "value)");
  const std::string& params_arg = cli.add_string(
      "params", "",
      "parameter overrides: scenario.key=value[,scenario.key=value...]");
  const std::string& out_path = cli.add_string(
      "out", "npd_run_report.json",
      "JSON report path ('-' or empty string streams the report to "
      "stdout)");
  const bool& no_perf = cli.add_flag(
      "no-perf",
      "omit wall-clock/throughput stamps (byte-reproducible report)");
  cli.parse(argc, argv);

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);

  if (list) {
    print_scenario_list(registry);
    return 0;
  }
  if (list_solvers) {
    print_solver_list();
    return 0;
  }

  engine::BatchRequest request;
  if (scenarios_arg == "all") {
    for (const engine::Scenario* scenario : registry.list()) {
      request.scenario_names.push_back(scenario->name());
    }
  } else {
    request.scenario_names = split(scenarios_arg, ',');
  }
  request.config.seed = static_cast<std::uint64_t>(seed);
  request.config.reps = static_cast<Index>(reps);
  request.config.threads = static_cast<Index>(threads);
  for (const std::string& entry : split(params_arg, ',')) {
    request.overrides.push_back(parse_override(entry));
  }

  const engine::RunReport report = engine::run_batch(registry, request);
  const std::string json = report.to_json(!no_perf).dump(2);

  // "-" is the conventional stdout spelling; the historical "" spelling
  // keeps working.
  const bool to_stdout = out_path.empty() || out_path == "-";
  if (to_stdout) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   out_path.c_str());
      return 1;
    }
    out << json << '\n';
  }

  // When the JSON owns stdout (--out - or --out ""), the human-readable
  // summary must not corrupt it (| python3 -m json.tool), so it moves to
  // stderr.
  FILE* summary = to_stdout ? stderr : stdout;
  ConsoleTable table({"scenario", "jobs", "cells", "job seconds"});
  for (const engine::ScenarioRunReport& scenario : report.scenarios) {
    const Json* cells = scenario.aggregates.find("cells");
    table.add_row({scenario.name, std::to_string(scenario.jobs),
                   std::to_string(cells != nullptr ? cells->size() : 0),
                   std::to_string(scenario.job_seconds)});
  }
  std::fputs(table.render().c_str(), summary);
  std::fprintf(summary, "\n%lld jobs in %.2f s (%.1f jobs/sec)\n",
               static_cast<long long>(report.total_jobs),
               report.wall_seconds, report.jobs_per_second);
  if (!to_stdout) {
    std::fprintf(summary, "[report written to %s]\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "npd_run: %s\n", error.what());
    return 2;
  }
}
