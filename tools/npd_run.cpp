// npd_run — the unified batch experiment driver.
//
// Lists the registered scenarios, runs any subset of them by name on the
// engine's shared worker pool, and writes one JSON run report
// (schema npd.run_report/1, see src/engine/report.hpp) per batch.
//
//   npd_run --list
//   npd_run --scenarios fig5,abl7 --reps 2 --threads 4 --seed 42
//           --params fig5.max_n=1000,abl7.max_n=500 --out report.json
//
// Sharded execution (src/shard): `--shard i/N` plans the identical batch
// on every host, executes only the i-th LPT-balanced shard, and writes a
// partial report (schema npd.run_report_shard/1) that tools/npd_merge
// folds back into the full report — byte-identical to the single-process
// run.  `--cache DIR` replays finished jobs from a content-addressed
// result cache (and stores fresh ones), so crashed or re-run sweeps skip
// completed work.  `--dry-run` prints the planned job/shard assignment
// without executing anything.
//
// Per-scenario aggregates are bit-identical for every --threads value;
// only the perf stamps (wall clock, jobs/sec) vary.  --no-perf omits
// them, making the whole report byte-reproducible.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"
#include "shard/launcher.hpp"
#include "shard/result_cache.hpp"
#include "shard/runner.hpp"
#include "shard/shard_plan.hpp"
#include "shard/shard_report.hpp"
#include "solve/reconstructor.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/heartbeat.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/profiler.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

using namespace npd;

/// Parse "--shard i/N" (1-based i).  Returns the 0-based shard index and
/// the shard count.
struct ShardSpec {
  Index index = 0;  ///< 0-based
  Index count = 1;
};

ShardSpec parse_shard_spec(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("malformed --shard '" + text +
                                "' (expected i/N, e.g. 2/3)");
  }
  const long long i =
      parse_int_value("--shard index", text.substr(0, slash));
  const long long n =
      parse_int_value("--shard count", text.substr(slash + 1));
  // The count rail comes first so an absurd N (a pasted seed, say) is
  // rejected before it can size the shard plan; then the index must
  // select one of those N shards.  Both are usage errors, never asserts.
  shard::require_valid_proc_count("--shard count", n);
  if (i < 1 || i > n) {
    throw std::invalid_argument(
        "--shard '" + text + "': index out of range, need 1 <= i <= N "
        "(e.g. --shard 2/3 for the second of three shards)");
  }
  return ShardSpec{static_cast<Index>(i - 1), static_cast<Index>(n)};
}

void print_param_specs(const std::string& owner,
                       const std::vector<ParamSpec>& specs) {
  for (const ParamSpec& spec : specs) {
    (void)std::printf("      %s.%s = %s  (%s)\n", owner.c_str(),
                spec.name.c_str(), spec.default_value.c_str(),
                spec.help.c_str());
  }
}

void print_scenario_list(const engine::ScenarioRegistry& registry) {
  (void)std::printf("Registered scenarios:\n\n");
  for (const engine::Scenario* scenario : registry.list()) {
    (void)std::printf("  %-18s %s\n", scenario->name().c_str(),
                scenario->description().c_str());
    print_param_specs(scenario->name(), scenario->params());
  }
  (void)std::printf(
      "\nRun a subset with --scenarios a,b,c; override parameters with\n"
      "--params scenario.key=value[,scenario.key=value...].\n"
      "Solver-generic scenarios select their algorithm with\n"
      "--params <scenario>.solver=<name> (see --list-solvers).\n");
}

void print_solver_list() {
  (void)std::printf("Registered solvers:\n\n");
  for (const solve::SolverFactory* factory : solve::builtin_solvers().list()) {
    (void)std::printf("  %-20s %s\n", factory->name().c_str(),
                factory->description().c_str());
    print_param_specs(factory->name(), factory->params());
  }
  (void)std::printf(
      "\nSelect one per scenario with --params <scenario>.solver=<name>;\n"
      "pass its options with\n"
      "--params <scenario>.solver_params=key=value[;key=value...].\n");
}

/// `--dry-run`: the planned job set and its shard assignment, without
/// executing anything.
void print_dry_run(const engine::BatchPlan& plan,
                   const shard::ShardPlan& shards, const ShardSpec& spec,
                   bool sharded) {
  (void)std::printf("Planned batch (fingerprint %s):\n\n",
              shard::content_hash(plan.fingerprint()).c_str());
  ConsoleTable scenario_table({"scenario", "jobs", "cells", "cost"});
  for (const engine::PlannedScenario& s : plan.scenarios) {
    Index cells = 0;
    Index cost = 0;
    for (Index j = s.first_job; j < s.first_job + s.job_count; ++j) {
      const engine::Job& job = plan.jobs[static_cast<std::size_t>(j)];
      cells = std::max(cells, job.cell + 1);
      cost += job.cost_hint;
    }
    scenario_table.add_row({s.scenario->name(), std::to_string(s.job_count),
                            std::to_string(cells), std::to_string(cost)});
  }
  (void)std::fputs(scenario_table.render().c_str(), stdout);

  (void)std::printf("\nShard assignment (LPT over cost hints, %lld shard%s):\n\n",
              static_cast<long long>(shards.shard_count()),
              shards.shard_count() == 1 ? "" : "s");
  // Rendered from the plan's own balance summary so the table and any
  // machine consumer of to_json() can never disagree.
  const Json balance = shards.to_json();
  const Json& entries = balance.at("shards");
  ConsoleTable shard_table({"shard", "jobs", "load", "share", ""});
  for (std::size_t s = 0; s < entries.size(); ++s) {
    const Json& entry = entries.at(s);
    char share[32];
    (void)std::snprintf(share, sizeof(share), "%.1f%%",
                        100.0 * entry.at("load_share").as_double());
    shard_table.add_row(
        {std::to_string(entry.at("shard").as_int() + 1) + "/" +
             std::to_string(shards.shard_count()),
         std::to_string(entry.at("jobs").as_int()),
         std::to_string(entry.at("load").as_int()), share,
         sharded && static_cast<Index>(s) == spec.index ? "<- this shard"
                                                        : ""});
  }
  (void)std::fputs(shard_table.render().c_str(), stdout);
  (void)std::printf("\n%lld jobs planned; nothing executed (--dry-run).\n",
              static_cast<long long>(plan.jobs.size()));
}

int run(int argc, char** argv) {
  CliParser cli("npd_run",
                "Unified batch experiment driver: runs registered "
                "scenarios and writes a JSON run report.");
  const bool& list = cli.add_flag(
      "list", "list scenarios (with parameter defaults and help) and exit");
  const bool& list_solvers = cli.add_flag(
      "list-solvers",
      "list registered solvers (with option defaults and help) and exit");
  const std::string& scenarios_arg = cli.add_string(
      "scenarios", "all", "comma-separated scenario names, or 'all'");
  const long long& reps =
      cli.add_int("reps", 1, "repetitions per grid cell");
  const long long& seed =
      cli.add_int("seed", 42, "base seed for all derived job streams");
  const long long& threads = cli.add_int(
      "threads", 0,
      "worker threads (0 = all cores; aggregates are identical for any "
      "value)");
  const std::string& params_arg = cli.add_string(
      "params", "",
      "parameter overrides: scenario.key=value[,scenario.key=value...]");
  const std::string& out_path = cli.add_string(
      "out", "npd_run_report.json",
      "JSON report path ('-' or empty string streams the report to "
      "stdout)");
  const bool& no_perf = cli.add_flag(
      "no-perf",
      "omit wall-clock/throughput stamps (byte-reproducible report)");
  const std::string& shard_arg = cli.add_string(
      "shard", "",
      "run one shard of the batch: i/N (1-based), e.g. 2/3; writes a "
      "partial report for tools/npd_merge");
  const std::string& cache_dir = cli.add_string(
      "cache", "",
      "content-addressed result cache directory: replay finished jobs, "
      "store fresh ones (created if absent)");
  const bool& dry_run = cli.add_flag(
      "dry-run",
      "print the planned job/shard assignment and exit without executing");
  const bool& cache_gc = cli.add_flag(
      "cache-gc",
      "after the run, drop cache entries that do not belong to this "
      "batch (and enforce --cache-max-mb); requires --cache");
  const long long& cache_max_mb = cli.add_int(
      "cache-max-mb", 0,
      "size-cap the cache after the run: evict least-recently-stored "
      "entries (never this batch's) down to N MiB (0 = no cap)");
  const std::string& test_crash = cli.add_string(
      "test-crash", "",
      "fault injection for the launcher tests: if this marker file does "
      "not exist, create it and abort (exit 9) after executing the jobs "
      "but before writing the report");
  const std::string& trace_path = cli.add_string(
      "trace", "",
      "write a Chrome-trace JSON (schema npd.trace/1, loadable in "
      "Perfetto / chrome://tracing) of this run's spans and counters; "
      "the report bytes are identical with or without it");
  const std::string& metrics_path = cli.add_string(
      "metrics", "",
      "write an npd.metrics/1 snapshot (counters, gauges, latency "
      "histograms) after the run; the report bytes are identical with "
      "or without it");
  const std::string& profile_path = cli.add_string(
      "profile", "",
      "sample this process with a SIGPROF profiler and write folded "
      "stacks (schema npd.profile/1) after the run; the report bytes "
      "are identical with or without it");
  const long long& profile_hz = cli.add_int(
      "profile-hz", 200, "sampling rate for --profile in samples/sec");
  const std::string& heartbeat_path = cli.add_string(
      "heartbeat", "",
      "write live progress (schema npd.heartbeat/1, temp+rename "
      "atomically) to this file while the jobs run; the feed behind "
      "npd_launch --watch");
  const long long& heartbeat_interval_ms = cli.add_int(
      "heartbeat-interval-ms", 200,
      "how often --heartbeat rewrites its file");
  const bool& quiet = cli.add_flag(
      "quiet", "suppress the summary tables and end-of-run lines "
      "(errors still print)");
  cli.parse(argc, argv);

  // Enable tracing/metrics before any instrumented thread exists (the
  // worker pool observes the flags when it starts running jobs).
  if (!trace_path.empty()) {
    trace::set_enabled(true);
  }
  if (!metrics_path.empty()) {
    metrics::set_enabled(true);
  }
  if (heartbeat_interval_ms < 1) {
    throw std::invalid_argument(
        "--heartbeat-interval-ms: need a positive interval");
  }
  bool profiling = false;
  if (!profile_path.empty()) {
    profiling = prof::start(static_cast<int>(profile_hz));
    if (!profiling) {
      (void)std::fprintf(stderr,
                         "npd_run: --profile: sampling profiler "
                         "unavailable; continuing without it\n");
    }
  }

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);

  if (list) {
    print_scenario_list(registry);
    return 0;
  }
  if (list_solvers) {
    print_solver_list();
    return 0;
  }

  const engine::BatchRequest request = tools::make_batch_request(
      registry, scenarios_arg, reps, seed, threads, params_arg);

  const bool sharded = !shard_arg.empty();
  const ShardSpec spec =
      sharded ? parse_shard_spec(shard_arg) : ShardSpec{};
  tools::validate_cache_gc_flags(cache_gc, cache_max_mb, cache_dir);

  const Timer timer;
  const engine::BatchPlan plan = [&] {
    const trace::Span span("plan");
    return engine::plan_batch(registry, request);
  }();
  const shard::ShardPlan shards = shard::ShardPlan::build(plan, spec.count);

  if (dry_run) {
    print_dry_run(plan, shards, spec, sharded);
    return 0;
  }

  std::optional<shard::ResultCache> cache;
  if (!cache_dir.empty()) {
    cache.emplace(cache_dir, shard::content_hash(plan.fingerprint()));
  }
  const auto collect_cache = [&](FILE* summary) {
    tools::collect_cache_gc(plan, cache_dir, cache_gc, cache_max_mb,
                            summary);
  };

  // Execute this process's slice: the selected shard, or — unsharded —
  // every job (through the same cache-aware path, so --cache works for
  // plain runs too).
  std::vector<Index> job_indices;
  if (sharded) {
    job_indices = shards.jobs_of(spec.index);
  } else {
    job_indices.reserve(plan.jobs.size());
    for (Index j = 0; j < static_cast<Index>(plan.jobs.size()); ++j) {
      job_indices.push_back(j);
    }
  }
  // Live progress feed: counters updated by the workers, written to the
  // heartbeat file by a background thread (temp+rename, so readers never
  // see a torn write).  Purely observational — the run computes the same
  // bytes with or without it.
  heartbeat::ProgressCounters progress;
  std::optional<heartbeat::HeartbeatWriter> beat_writer;
  if (!heartbeat_path.empty()) {
    beat_writer.emplace(heartbeat_path, spec.index, spec.count, progress,
                        static_cast<int>(heartbeat_interval_ms));
  }

  const shard::RunJobsOutcome outcome = [&] {
    const trace::Span span("run_jobs");
    return shard::run_jobs(
        plan, job_indices, request.config.threads,
        cache.has_value() ? &*cache : nullptr,
        beat_writer.has_value() ? &progress : nullptr);
  }();

  // Deterministic fault injection for the launcher's restart tests: the
  // O_EXCL create makes exactly one process (across all shards sharing
  // the marker) take the crash, after its jobs hit the cache but before
  // its report exists — the worst-timed kill the supervisor must absorb.
  if (!test_crash.empty()) {
    const int marker_fd =
        ::open(test_crash.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (marker_fd >= 0) {
      ::close(marker_fd);
      (void)std::fprintf(stderr,
                   "npd_run: --test-crash: injected crash before the "
                   "report write (marker %s created)\n",
                   test_crash.c_str());
      return 9;
    }
  }

  const bool to_stdout = tools::writes_to_stdout(out_path);
  FILE* summary = tools::summary_stream(out_path);

  // The machine-greppable end-of-run line (satisfied with or without
  // --trace): job count, cache hit/executed split, wall time.  Goes to
  // stderr so it survives `--out -` report streaming.
  const auto stderr_summary = [&] {
    if (quiet) {
      return;
    }
    (void)std::fprintf(
        stderr, "npd_run: %lld jobs, %lld cache hits, %lld executed, "
        "%.2f s\n",
        static_cast<long long>(outcome.results.size()),
        static_cast<long long>(outcome.cache_hits),
        static_cast<long long>(outcome.executed), timer.elapsed_seconds());
  };

  // Flush after every instrumented thread has joined (run_jobs joins its
  // workers; the heartbeat writer only reads counters) and after the
  // report is on disk — the trace is telemetry about the run, never a
  // participant in it.
  const auto write_trace = [&]() -> bool {
    if (trace_path.empty()) {
      return true;
    }
    const trace::TraceSnapshot snapshot = trace::flush();
    if (!tools::write_output(trace::chrome_trace_json(snapshot).dump(2),
                             trace_path)) {
      return false;
    }
    if (!quiet) {
      (void)std::fprintf(stderr, "[trace written to %s]\n",
                         trace_path.c_str());
    }
    return true;
  };

  // Same out-of-band contract as the trace: the snapshot and profile
  // are written after the report is on disk, and the report bytes never
  // depend on them.
  const auto write_observability = [&]() -> bool {
    bool ok = true;
    if (profiling) {
      prof::stop();
      const prof::Profile profile = prof::collect();
      if (tools::write_output(prof::profile_json(profile).dump(2),
                              profile_path)) {
        if (!quiet) {
          (void)std::fprintf(stderr,
                             "[profile written to %s (%lld samples)]\n",
                             profile_path.c_str(),
                             static_cast<long long>(profile.samples));
        }
      } else {
        ok = false;
      }
    }
    if (!metrics_path.empty()) {
      if (tools::write_output(
              metrics::snapshot_json(metrics::snapshot()).dump(2),
              metrics_path)) {
        if (!quiet) {
          (void)std::fprintf(stderr, "[metrics written to %s]\n",
                             metrics_path.c_str());
        }
      } else {
        ok = false;
      }
    }
    return ok;
  };

  if (sharded) {
    {
      const trace::Span span("report");
      const shard::ShardRunReport report = shard::make_shard_report(
          plan, shards, spec.index, outcome.results);
      const std::string json =
          shard::shard_report_to_json(report, !no_perf).dump(2);
      if (!tools::write_output(json, out_path)) {
        return 1;
      }
    }
    if (!quiet) {
      (void)std::fprintf(summary,
                   "shard %lld/%lld: %lld of %lld jobs (%lld cache hits, "
                   "%lld executed) in %.2f s\n",
                   static_cast<long long>(spec.index + 1),
                   static_cast<long long>(spec.count),
                   static_cast<long long>(outcome.results.size()),
                   static_cast<long long>(plan.jobs.size()),
                   static_cast<long long>(outcome.cache_hits),
                   static_cast<long long>(outcome.executed),
                   timer.elapsed_seconds());
      if (!to_stdout) {
        (void)std::fprintf(summary, "[partial report written to %s — merge "
                              "with npd_merge]\n",
                     out_path.c_str());
      }
    }
    collect_cache(summary);
    stderr_summary();
    const bool trace_ok = write_trace();
    const bool observability_ok = write_observability();
    return trace_ok && observability_ok ? 0 : 1;
  }

  {
    const trace::Span span("report");
    engine::RunReport report =
        engine::build_report(plan, outcome.results, request.config.threads);
    engine::stamp_perf(report, timer.elapsed_seconds());
    const std::string json = report.to_json(!no_perf).dump(2);
    if (!tools::write_output(json, out_path)) {
      return 1;
    }

    if (!quiet) {
      ConsoleTable table({"scenario", "jobs", "cells", "job seconds"});
      for (const engine::ScenarioRunReport& scenario : report.scenarios) {
        const Json* cells = scenario.aggregates.find("cells");
        table.add_row({scenario.name, std::to_string(scenario.jobs),
                       std::to_string(cells != nullptr ? cells->size() : 0),
                       std::to_string(scenario.job_seconds)});
      }
      (void)std::fputs(table.render().c_str(), summary);
      (void)std::fprintf(summary, "\n%lld jobs in %.2f s (%.1f jobs/sec)",
                   static_cast<long long>(report.total_jobs),
                   report.wall_seconds, report.jobs_per_second);
      if (cache.has_value()) {
        (void)std::fprintf(summary, ", %lld cache hits",
                     static_cast<long long>(outcome.cache_hits));
      }
      (void)std::fprintf(summary, "\n");
      if (!to_stdout) {
        (void)std::fprintf(summary, "[report written to %s]\n",
                           out_path.c_str());
      }
    }
  }
  collect_cache(summary);
  stderr_summary();
  const bool trace_ok = write_trace();
  const bool observability_ok = write_observability();
  return trace_ok && observability_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    (void)std::fprintf(stderr, "npd_run: %s\n", error.what());
    return 2;
  }
}
