// npd_launch — the multi-process shard supervisor.
//
// Takes the same batch surface as npd_run plus `--procs N`: it plans the
// batch in-process (so bad scenario names/parameters fail before any
// child starts), spawns N `npd_run --shard i/N` children with per-shard
// log capture, restarts crashed shards up to `--retries` (resuming from
// `--cache` when one is configured), and on completion merges the
// partial reports in-process — writing a final report **byte-identical**
// to the single-process `npd_run` for the same request.
//
//   npd_launch --scenarios fig5 --reps 5 --seed 42 --procs 3
//       --cache cache/ --no-perf --out full.json
//
// is equivalent to (but supervised, parallel and crash-tolerant):
//
//   npd_run --scenarios fig5 --reps 5 --seed 42 --no-perf --out full.json
//
// The children are ordinary npd_run processes found next to this binary
// (override with --runner); shard reports and logs land in --workdir.
// With --cache-gc / --cache-max-mb the parent garbage-collects the cache
// after the merge (see npd_run: same policy, same live-key protection).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"
#include "shard/launcher.hpp"
#include "shard/merge.hpp"
#include "shard/result_cache.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/heartbeat.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace npd;

/// Set by the SIGINT/SIGTERM handler; the supervisor loops poll it and
/// tear the shard children down instead of orphaning them.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // the loops poll; no syscall must fail
  (void)::sigaction(SIGTERM, &action, nullptr);
  (void)::sigaction(SIGINT, &action, nullptr);
}

/// The npd_run binary expected next to this executable (children must be
/// the same build, or their reports' fingerprints will refuse to merge).
std::string default_runner() {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) {
    return "npd_run";  // fall back to PATH lookup
  }
  return (self.parent_path() / "npd_run").string();
}

int run(int argc, char** argv) {
  CliParser cli("npd_launch",
                "Multi-process shard supervisor: spawn N npd_run shard "
                "children, restart crashes, auto-merge the partial "
                "reports into one full run report.");
  const std::string& scenarios_arg = cli.add_string(
      "scenarios", "all", "comma-separated scenario names, or 'all'");
  const long long& reps =
      cli.add_int("reps", 1, "repetitions per grid cell");
  const long long& seed =
      cli.add_int("seed", 42, "base seed for all derived job streams");
  const long long& threads = cli.add_int(
      "threads", 1,
      "worker threads per shard child (0 = all cores; with N children "
      "prefer 1; aggregates are identical for any value)");
  const std::string& params_arg = cli.add_string(
      "params", "",
      "parameter overrides: scenario.key=value[,scenario.key=value...]");
  const std::string& out_path = cli.add_string(
      "out", "npd_launch_report.json",
      "merged report path ('-' or empty string streams the JSON to "
      "stdout)");
  const bool& no_perf = cli.add_flag(
      "no-perf",
      "omit wall-clock/throughput stamps (byte-reproducible report, "
      "cmp-equal to npd_run --no-perf single-process output)");
  const long long& procs = cli.add_int(
      "procs", 2, "number of shard child processes (the N of --shard i/N)");
  const long long& retries = cli.add_int(
      "retries", 1, "restart budget per shard before the launch aborts");
  const std::string& runner_arg = cli.add_string(
      "runner", "",
      "npd_run binary to exec (default: the npd_run next to npd_launch)");
  const std::string& workdir = cli.add_string(
      "workdir", "npd_launch_work",
      "directory for shard reports (shard_<i>.json) and logs "
      "(shard_<i>.log)");
  const std::string& cache_dir = cli.add_string(
      "cache", "",
      "result cache directory forwarded to every child: crashed shards "
      "resume instead of recompute (created if absent)");
  const bool& cache_gc = cli.add_flag(
      "cache-gc",
      "after the merge, drop cache entries that do not belong to this "
      "batch (and enforce --cache-max-mb); requires --cache");
  const long long& cache_max_mb = cli.add_int(
      "cache-max-mb", 0,
      "size-cap the cache after the merge: evict least-recently-stored "
      "entries (never this batch's) down to N MiB (0 = no cap)");
  const std::string& test_crash = cli.add_string(
      "test-crash", "",
      "fault injection forwarded to the children (see npd_run "
      "--test-crash): exactly one shard crashes once, exercising the "
      "restart path");
  const std::string& metrics_path = cli.add_string(
      "metrics", "",
      "collect an npd.metrics/1 snapshot from every shard child and "
      "write their deterministic merge here; the merged report bytes "
      "are identical with or without it");
  const long long& heartbeat_interval_ms = cli.add_int(
      "heartbeat-interval-ms", 200,
      "how often each shard child rewrites its heartbeat file "
      "(forwarded to the children; the feed behind --watch)");
  const bool& watch = cli.add_flag(
      "watch",
      "tail the shard heartbeats while they run and render a live "
      "aggregate progress line (jobs/sec, ETA, per-shard lag, restarts) "
      "on stderr; in-place on a TTY, one line per change otherwise");
  const long long& watch_interval_ms = cli.add_int(
      "watch-interval-ms", 500, "poll/render cadence of --watch");
  cli.parse(argc, argv);

  shard::require_valid_proc_count("--procs", procs);
  if (retries < 0) {
    throw std::invalid_argument("--retries: must be >= 0");
  }
  tools::validate_cache_gc_flags(cache_gc, cache_max_mb, cache_dir);

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);

  // Plan the identical batch the children will plan: every usage error
  // (unknown scenario, bad parameter) surfaces here, before any process
  // is spawned — and the plan's fingerprint/job keys drive the
  // version-skew check and the cache GC below.
  const engine::BatchRequest request = tools::make_batch_request(
      registry, scenarios_arg, reps, seed, threads, params_arg);
  const Timer timer;
  const engine::BatchPlan plan = engine::plan_batch(registry, request);
  const std::string fingerprint = shard::content_hash(plan.fingerprint());

  if (watch_interval_ms < 1) {
    throw std::invalid_argument("--watch-interval-ms: must be >= 1");
  }
  if (heartbeat_interval_ms < 1) {
    throw std::invalid_argument("--heartbeat-interval-ms: must be >= 1");
  }

  shard::LaunchOptions options;
  options.runner = runner_arg.empty() ? default_runner() : runner_arg;
  options.procs = static_cast<Index>(procs);
  options.retries = static_cast<Index>(retries);
  options.work_dir = workdir;
  // Heartbeats are always on under the supervisor (they feed the final
  // telemetry block); --watch additionally renders them live.
  options.heartbeats = true;
  options.metrics = !metrics_path.empty();
  options.watch = watch;
  options.watch_interval_ms = static_cast<int>(watch_interval_ms);
  options.batch_args = {"--scenarios", scenarios_arg,
                        "--reps",      std::to_string(reps),
                        "--seed",      std::to_string(seed),
                        "--threads",   std::to_string(threads),
                        "--heartbeat-interval-ms",
                        std::to_string(heartbeat_interval_ms)};
  if (!params_arg.empty()) {
    options.batch_args.push_back("--params");
    options.batch_args.push_back(params_arg);
  }
  if (!cache_dir.empty()) {
    options.batch_args.push_back("--cache");
    options.batch_args.push_back(cache_dir);
  }
  if (!test_crash.empty()) {
    options.batch_args.push_back("--test-crash");
    options.batch_args.push_back(test_crash);
  }
  if (no_perf) {
    options.batch_args.push_back("--no-perf");
  }

  const bool to_stdout = tools::writes_to_stdout(out_path);
  FILE* summary = tools::summary_stream(out_path);
  (void)std::fprintf(summary,
               "launching %lld shard%s of %lld jobs (runner %s, workdir "
               "%s)\n",
               static_cast<long long>(options.procs),
               options.procs == 1 ? "" : "s",
               static_cast<long long>(plan.jobs.size()),
               options.runner.c_str(), workdir.c_str());

  install_signal_handlers();
  options.stop = &g_stop;

  shard::LaunchOutcome outcome;
  try {
    outcome = shard::run_shard_processes(options);
  } catch (const shard::LaunchInterrupted& interrupted) {
    // Asked to stop (Ctrl-C / SIGTERM): the children are terminated and
    // reaped, there is nothing to merge.  Still close the run with a
    // machine-readable telemetry block so a supervisor tailing stderr
    // sees a deliberate stop, not a vanished process.
    (void)std::fprintf(summary, "%s\n", interrupted.what());
    Json telemetry = Json::object();
    telemetry.set("schema", "npd.telemetry/1")
        .set("interrupted", true)
        .set("procs", options.procs)
        .set("wall_seconds", timer.elapsed_seconds());
    (void)std::fprintf(stderr, "telemetry %s\n", telemetry.dump().c_str());
    return 130;
  }
  for (const shard::ShardRunReport& shard_report : outcome.reports) {
    if (shard_report.fingerprint != fingerprint) {
      // The children planned a different batch than we did: the runner
      // binary is a different build (scenario-code drift).  Merging
      // would fail anyway; name the real cause instead.
      throw std::runtime_error(
          "runner version skew: shard reports carry batch fingerprint " +
          shard_report.fingerprint + ", this binary planned " +
          fingerprint + " — rebuild so npd_launch and " + options.runner +
          " match");
    }
  }
  engine::RunReport report = shard::merge_shard_reports(registry,
                                                        outcome.reports);
  engine::stamp_perf(report, timer.elapsed_seconds());

  const std::string json = report.to_json(!no_perf).dump(2);
  if (!tools::write_output(json, out_path)) {
    return 1;
  }

  ConsoleTable table({"scenario", "jobs", "cells"});
  for (const engine::ScenarioRunReport& scenario : report.scenarios) {
    const Json* cells = scenario.aggregates.find("cells");
    table.add_row({scenario.name, std::to_string(scenario.jobs),
                   std::to_string(cells != nullptr ? cells->size() : 0)});
  }
  (void)std::fputs(table.render().c_str(), summary);
  (void)std::fprintf(summary,
               "\n%lld jobs over %lld shard%s in %.2f s (%lld restart%s)\n",
               static_cast<long long>(report.total_jobs),
               static_cast<long long>(options.procs),
               options.procs == 1 ? "" : "s", timer.elapsed_seconds(),
               static_cast<long long>(outcome.restarts),
               outcome.restarts == 1 ? "" : "s");
  if (!to_stdout) {
    (void)std::fprintf(summary, "[merged report written to %s]\n",
                 out_path.c_str());
  }

  tools::collect_cache_gc(plan, cache_dir, cache_gc, cache_max_mb,
                          summary);

  // Fold the shard children's npd.metrics/1 snapshots into one merged
  // document: counters sum, gauges keep the max, histogram buckets add
  // — deterministic because every count is an integer and names are
  // sorted.  Out-of-band, like the telemetry block it also feeds.
  Json merged_metrics;
  if (!metrics_path.empty()) {
    std::vector<Json> shard_docs;
    for (const std::filesystem::path& path : outcome.metrics_paths) {
      try {
        shard_docs.push_back(Json::parse(tools::read_file(path.string())));
      } catch (const std::exception& error) {
        (void)std::fprintf(stderr,
                           "npd_launch: --metrics: skipping shard "
                           "snapshot %s (%s)\n",
                           path.string().c_str(), error.what());
      }
    }
    merged_metrics = metrics::merge_snapshot_docs(shard_docs);
    if (!tools::write_output(merged_metrics.dump(2), metrics_path)) {
      return 1;
    }
    (void)std::fprintf(summary, "[merged metrics written to %s]\n",
                       metrics_path.c_str());
  }

  // Final machine-readable telemetry block (schema npd.telemetry/1) on
  // stderr: launch-level aggregates plus each shard's last heartbeat.
  // Out-of-band — nothing in the merged report depends on it.
  const double wall = timer.elapsed_seconds();
  Json telemetry = Json::object();
  telemetry.set("schema", "npd.telemetry/1")
      .set("jobs", report.total_jobs)
      .set("procs", options.procs)
      .set("restarts", outcome.restarts)
      .set("wall_seconds", wall)
      .set("jobs_per_second",
           wall > 0.0 ? static_cast<double>(report.total_jobs) / wall : 0.0);
  Json shard_beats = Json::array();
  for (std::size_t i = 0; i < outcome.heartbeat_paths.size(); ++i) {
    Json entry = Json::object();
    entry.set("shard", static_cast<std::int64_t>(i));
    if (const std::optional<heartbeat::Heartbeat> beat =
            heartbeat::read_heartbeat(outcome.heartbeat_paths[i])) {
      entry.set("jobs_done", beat->jobs_done)
          .set("jobs_total", beat->jobs_total)
          .set("cache_hits", beat->cache_hits)
          .set("cache_misses", beat->cache_misses)
          .set("done", beat->done);
    }
    shard_beats.push_back(std::move(entry));
  }
  telemetry.set("shards", std::move(shard_beats));
  if (!metrics_path.empty()) {
    telemetry.set("metrics", std::move(merged_metrics));
  }
  (void)std::fprintf(stderr, "telemetry %s\n", telemetry.dump().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    (void)std::fprintf(stderr, "npd_launch: %s\n", error.what());
    return 2;
  }
}
