/// \file npd_lint.cpp
/// Repo-specific static checker for the two contracts the compiler cannot
/// see: the module layering DAG (docs/architecture.md) and the
/// determinism rules (docs/schemas.md) that make 1 thread = N threads =
/// N processes hold.
///
/// Deliberately token-level — a comment/string-aware scanner plus
/// regexes over single lines, no libclang — so it builds everywhere the
/// repo builds and runs in milliseconds as a ctest.  The price is that
/// it checks *textual* constructs, not semantics; every rule is chosen
/// so the textual form is the hazard (an `#include` edge, a call to
/// `std::rand`, a range-for over an unordered container in a report
/// path).  Rules and scopes are documented in docs/static_analysis.md;
/// fixture trees under tests/lint_fixtures/ pin each rule's behaviour.
///
/// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ layering DAG
//
// Direct edges, mirroring src/CMakeLists.txt ("links against / includes
// headers of").  Includes follow the *transitive closure*: module
// libraries export their dependencies PUBLICly, so `engine` may include
// "harness/stats.hpp" and, through it, "amp/..." headers.
const std::map<std::string, std::vector<std::string>>& direct_deps() {
  static const std::map<std::string, std::vector<std::string>> deps = {
      {"util", {}},
      {"rand", {"util"}},
      {"pooling", {"rand", "util"}},
      {"noise", {"rand", "util"}},
      {"linalg", {"pooling", "util"}},
      {"core", {"noise", "pooling", "util"}},
      {"amp", {"core", "linalg", "noise", "util"}},
      {"netsim", {"amp", "core", "util"}},
      {"solve", {"amp", "core", "netsim", "noise", "pooling", "util"}},
      {"harness", {"amp", "core", "noise", "pooling", "solve", "util"}},
      {"engine", {"harness", "netsim", "solve", "util"}},
      {"shard", {"engine", "util"}},
      {"serve", {"engine", "solve", "util"}},
  };
  return deps;
}

/// Transitive closure of `direct_deps` (module -> every module it may
/// include, itself included).
std::map<std::string, std::set<std::string>> allowed_includes() {
  std::map<std::string, std::set<std::string>> closure;
  for (const auto& [module, _] : direct_deps()) {
    // Iterative DFS from `module` over the direct edges.
    std::set<std::string>& reach = closure[module];
    std::vector<std::string> stack{module};
    while (!stack.empty()) {
      const std::string current = stack.back();
      stack.pop_back();
      if (!reach.insert(current).second) {
        continue;
      }
      const auto it = direct_deps().find(current);
      if (it != direct_deps().end()) {
        for (const std::string& dep : it->second) {
          stack.push_back(dep);
        }
      }
    }
  }
  return closure;
}

// ------------------------------------------------- comment/string stripping

/// One pass over a source file producing two views with identical line
/// structure (every stripped character becomes a space, newlines are
/// kept):
///   `no_comments` — comments removed, string/char literals kept
///     (used to read `#include "..."` directives), and
///   `code_only`   — comments AND literals removed (used for the token
///     rules, so a regex in a string or a commented-out `std::rand()`
///     never trips a ban).
struct StrippedSource {
  std::string no_comments;
  std::string code_only;
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

StrippedSource strip_source(const std::string& text) {
  StrippedSource out;
  out.no_comments.reserve(text.size());
  out.code_only.reserve(text.size());

  const auto emit = [&](char c, bool is_code, bool keep_in_no_comments) {
    const char blank = (c == '\n') ? '\n' : ' ';
    out.no_comments += keep_in_no_comments ? c : blank;
    out.code_only += is_code ? c : blank;
  };

  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  State state = State::Code;
  std::string raw_terminator;  // )delim" for the active raw string
  char prev_code = '\0';       // last significant code char (digit-separator
                               // and prefix heuristics)

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = (i + 1 < text.size()) ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          emit(c, false, false);
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          emit(c, false, false);
        } else if (c == '"') {
          // R"delim( raw string?  The R directly precedes the quote.
          if (prev_code == 'R') {
            std::size_t paren = text.find('(', i + 1);
            if (paren != std::string::npos && paren - i <= 18) {
              raw_terminator =
                  ")" + text.substr(i + 1, paren - i - 1) + "\"";
              state = State::Raw;
              emit(c, false, true);
              break;
            }
          }
          state = State::String;
          emit(c, false, true);
        } else if (c == '\'' && !is_ident_char(prev_code)) {
          // A quote after an identifier/digit is a C++14 digit separator
          // (1'000'000), not a char literal.
          state = State::Char;
          emit(c, false, true);
        } else {
          emit(c, true, true);
          if (c != ' ' && c != '\t') {
            prev_code = c;
          }
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
        }
        emit(c, false, false);
        break;
      case State::BlockComment:
        if (c == '/' && i > 0 && text[i - 1] == '*') {
          state = State::Code;
        }
        emit(c, false, false);
        break;
      case State::String:
        if (c == '\\') {
          emit(c, false, true);
          if (i + 1 < text.size()) {
            ++i;
            emit(text[i], false, true);
          }
          break;
        }
        if (c == '"') {
          state = State::Code;
          prev_code = '"';
        }
        emit(c, false, true);
        break;
      case State::Char:
        if (c == '\\') {
          emit(c, false, true);
          if (i + 1 < text.size()) {
            ++i;
            emit(text[i], false, true);
          }
          break;
        }
        if (c == '\'') {
          state = State::Code;
          prev_code = '\'';
        }
        emit(c, false, true);
        break;
      case State::Raw:
        emit(c, false, true);
        if (c == '"' && i + 1 >= raw_terminator.size() &&
            text.compare(i + 1 - raw_terminator.size(),
                         raw_terminator.size(), raw_terminator) == 0) {
          state = State::Code;
          prev_code = '"';
        }
        break;
    }
  }
  return out;
}

// ------------------------------------------------------------- violations

struct Violation {
  fs::path file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

/// The `src/<module>/` a path belongs to, or "" when outside src/.
std::string module_of(const fs::path& relative) {
  auto it = relative.begin();
  if (it == relative.end() || it->string() != "src") {
    return "";
  }
  ++it;
  if (it == relative.end()) {
    return "";
  }
  const std::string module = it->string();
  return direct_deps().count(module) > 0 ? module : "";
}

/// Collect names declared as std::unordered_map/_set in `code_only`,
/// handling nested template arguments by balancing the angle brackets.
std::set<std::string> unordered_declarations(const std::string& code) {
  std::set<std::string> names;
  static const std::regex decl_head(R"(unordered_(?:map|set)\s*<)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), decl_head);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    int depth = 1;
    while (pos < code.size() && depth > 0) {
      if (code[pos] == '<') {
        ++depth;
      } else if (code[pos] == '>') {
        --depth;
      }
      ++pos;
    }
    while (pos < code.size() &&
           (code[pos] == ' ' || code[pos] == '\t' || code[pos] == '\n' ||
            code[pos] == '&')) {
      ++pos;
    }
    std::string name;
    while (pos < code.size() && is_ident_char(code[pos])) {
      name += code[pos++];
    }
    if (!name.empty()) {
      names.insert(name);
    }
  }
  return names;
}

struct BanRule {
  std::string rule;
  std::regex pattern;
  std::string message;
};

const std::vector<BanRule>& determinism_bans() {
  // Applied to code with comments AND literals stripped, so only real
  // code trips them.  Scope: src/ and tools/ (tests may do as they
  // like; the fixture trees under tests/lint_fixtures are never
  // scanned).
  static const std::vector<BanRule> bans = [] {
    std::vector<BanRule> rules;
    rules.push_back({"no-std-rand", std::regex(R"(std\s*::\s*rand\b)"),
                     "std::rand is unseeded global state; use rand::Rng "
                     "(src/rand) with a derived seed"});
    rules.push_back({"no-std-rand", std::regex(R"(\bsrand\s*\()"),
                     "srand seeds process-global state; use rand::Rng "
                     "(src/rand) with a derived seed"});
    rules.push_back({"no-std-rand", std::regex(R"(\brandom_device\b)"),
                     "std::random_device is nondeterministic; all entropy "
                     "must come from derived seeds (src/rand)"});
    rules.push_back({"no-wall-clock", std::regex(R"(\btime\s*\()"),
                     "time() reads the wall clock; results must be pure "
                     "functions of the seed (Timer/steady_clock is fine "
                     "for perf stamps)"});
    rules.push_back({"no-wall-clock", std::regex(R"(\bgettimeofday\b)"),
                     "gettimeofday reads the wall clock; use Timer "
                     "(steady_clock) for perf stamps"});
    rules.push_back({"no-wall-clock", std::regex(R"(\bsystem_clock\b)"),
                     "system_clock is the wall clock; use steady_clock "
                     "(util/timer.hpp) for durations"});
    return rules;
  }();
  return bans;
}

/// Files whose output feeds byte-identical reports/merges/cache indexes:
/// iterating an unordered container there would make emission order
/// depend on the hash function and allocation addresses.
bool in_deterministic_emit_path(const fs::path& relative) {
  static const std::vector<std::string> prefixes = {
      "src/engine/report", "src/engine/engine",  "src/shard/merge",
      "src/shard/shard_report", "src/shard/metrics_io",
      "src/shard/result_cache",
  };
  const std::string generic = relative.generic_string();
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& prefix) {
                       return generic.rfind(prefix, 0) == 0;
                     });
}

/// Files aggregating metric values: float accumulators lose integer
/// exactness long before int64/double do and change results with
/// association order; harness::stats is double-only by contract.
bool in_stats_path(const fs::path& relative) {
  const std::string generic = relative.generic_string();
  return generic.rfind("src/harness/stats", 0) == 0 ||
         generic.rfind("src/engine/report", 0) == 0;
}

void check_file(const fs::path& root, const fs::path& relative,
                std::vector<Violation>& out) {
  std::ifstream in(root / relative, std::ios::binary);
  if (!in) {
    out.push_back({relative, 0, "io", "cannot read file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const StrippedSource stripped = strip_source(buffer.str());
  const std::vector<std::string> include_lines =
      split_lines(stripped.no_comments);
  const std::vector<std::string> code_lines =
      split_lines(stripped.code_only);

  const std::string generic = relative.generic_string();
  const bool in_src = generic.rfind("src/", 0) == 0;
  const bool in_tools = generic.rfind("tools/", 0) == 0;
  const std::string module = module_of(relative);

  // ---- layering: every quoted include from a src/ module must name a
  // module in the allowed transitive closure.
  if (!module.empty()) {
    static const std::map<std::string, std::set<std::string>> closure =
        allowed_includes();
    static const std::regex include_pattern(
        R"(^\s*#\s*include\s*\"([^\"]+)\")");
    const std::set<std::string>& allowed = closure.at(module);
    for (std::size_t i = 0; i < include_lines.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(include_lines[i], match, include_pattern)) {
        continue;
      }
      const std::string header = match[1].str();
      const std::size_t slash = header.find('/');
      if (slash == std::string::npos) {
        continue;  // same-directory include
      }
      const std::string target = header.substr(0, slash);
      if (direct_deps().count(target) == 0) {
        continue;  // not a module path (e.g. sys/, third-party)
      }
      if (allowed.count(target) == 0) {
        out.push_back(
            {relative, i + 1, "layering",
             "module '" + module + "' may not include '" + target +
                 "/' (include \"" + header +
                 "\"); allowed: see the DAG in docs/architecture.md"});
      }
    }
  }

  // ---- determinism bans (src/ and tools/, except src/rand which owns
  // the repo's one sanctioned entropy/seed boundary).  The wall-clock
  // ban alone has a four-file telemetry allowlist: trace flush stamps,
  // heartbeat freshness, metrics capture times and profiler sample
  // intervals need real time, and confining every such read to these
  // TUs is exactly what keeps timestamps out of reports, cache keys
  // and fingerprints (callers go through heartbeat::now_unix_seconds
  // instead of touching a clock).
  const bool telemetry_tu = generic == "src/util/trace.cpp" ||
                            generic == "src/util/heartbeat.cpp" ||
                            generic == "src/util/metrics.cpp" ||
                            generic == "src/util/profiler.cpp";
  if ((in_src || in_tools) && generic.rfind("src/rand/", 0) != 0) {
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      for (const BanRule& ban : determinism_bans()) {
        if (telemetry_tu && ban.rule == "no-wall-clock") {
          continue;
        }
        if (std::regex_search(code_lines[i], ban.pattern)) {
          out.push_back({relative, i + 1, ban.rule, ban.message});
        }
      }
    }
  }

  // ---- unordered-container iteration in deterministic emit paths.
  if (in_deterministic_emit_path(relative)) {
    const std::set<std::string> unordered =
        unordered_declarations(stripped.code_only);
    if (!unordered.empty()) {
      static const std::regex range_for(R"(for\s*\([^;()]*:\s*(\w+)\s*\))");
      static const std::regex begin_call(R"((\w+)\s*\.\s*c?begin\s*\(\s*\))");
      for (std::size_t i = 0; i < code_lines.size(); ++i) {
        for (const std::regex& pattern : {range_for, begin_call}) {
          std::smatch match;
          std::string rest = code_lines[i];
          while (std::regex_search(rest, match, pattern)) {
            if (unordered.count(match[1].str()) > 0) {
              out.push_back(
                  {relative, i + 1, "no-unordered-iteration",
                   "iteration over unordered container '" +
                       match[1].str() +
                       "' in a report/merge/cache-index path; emission "
                       "order would depend on the hash seed — use a "
                       "sorted container or sort the keys first"});
            }
            rest = match.suffix().str();
          }
        }
      }
    }
  }

  // ---- float accumulators in stats/aggregation paths.
  if (in_stats_path(relative)) {
    static const std::regex float_token(R"(\bfloat\b)");
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (std::regex_search(code_lines[i], float_token)) {
        out.push_back({relative, i + 1, "no-float-accumulator",
                       "float in a stats/aggregation path; metric "
                       "aggregation is double-only (harness::stats "
                       "contract, docs/schemas.md)"});
      }
    }
  }
}

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [--root DIR] [--quiet]\n"
      << "\n"
      << "Checks the repo's layering DAG (#include edges between src/\n"
      << "modules) and determinism rules (no std::rand/random_device,\n"
      << "no wall-clock reads, no unordered-container iteration in\n"
      << "report/merge/cache-index paths, no float accumulators in\n"
      << "stats) over src/ tools/ tests/ bench/ examples/.\n"
      << "See docs/static_analysis.md for the rule list.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!fs::is_directory(root)) {
    std::cerr << "npd_lint: not a directory: " << root.string() << "\n";
    return 2;
  }

  // Deterministic tool, deterministic scan order: collect then sort.
  std::vector<fs::path> files;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !is_source_file(entry.path())) {
        continue;
      }
      const fs::path relative = fs::relative(entry.path(), root);
      // The fixture mini-trees exist to *contain* violations.
      if (relative.generic_string().find("lint_fixtures") !=
          std::string::npos) {
        continue;
      }
      files.push_back(relative);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& file : files) {
    check_file(root, file, violations);
  }

  for (const Violation& violation : violations) {
    std::cout << violation.file.generic_string() << ":" << violation.line
              << ": [" << violation.rule << "] " << violation.message
              << "\n";
  }
  if (!violations.empty()) {
    std::cerr << "npd_lint: " << violations.size() << " violation(s) in "
              << files.size() << " file(s) scanned\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "npd_lint: OK (" << files.size() << " files scanned)\n";
  }
  return 0;
}
