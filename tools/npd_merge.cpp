// npd_merge — fold partial shard reports (npd.run_report_shard/1, the
// output of `npd_run --shard i/N`) back into one full run report
// (npd.run_report/1), byte-identical to the report the single-process
// `npd_run` writes for the same request.
//
//   npd_run --scenarios fixed_m --shard 1/3 --out shard1.json   # host 1
//   npd_run --scenarios fixed_m --shard 2/3 --out shard2.json   # host 2
//   npd_run --scenarios fixed_m --shard 3/3 --out shard3.json   # host 3
//   npd_merge --inputs shard1.json,shard2.json,shard3.json --out full.json
//
// The merger re-plans the batch from the reports' config echo on the
// built-in scenario registry, verifies the batch fingerprint and every
// job's (cell, rep, seed) echo, requires every job to be covered exactly
// once, and re-runs the deterministic aggregation over the complete
// result set.  Reports produced by cache-resumed reruns merge the same
// way (cache replay does not change any metric byte).

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <set>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"
#include "shard/merge.hpp"
#include "shard/shard_report.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace npd;

int run(int argc, char** argv) {
  CliParser cli("npd_merge",
                "Merge npd_run --shard partial reports into one full run "
                "report, byte-identical to the single-process run.");
  const std::string& inputs_arg = cli.add_string(
      "inputs", "", "comma-separated shard report paths");
  const std::string& dir_arg = cli.add_string(
      "dir", "",
      "merge every *.json in this directory (sorted by name; combines "
      "with --inputs)");
  const std::string& out_path = cli.add_string(
      "out", "npd_merge_report.json",
      "merged report path ('-' or empty string streams the JSON to "
      "stdout)");
  const bool& no_perf = cli.add_flag(
      "no-perf",
      "omit wall-clock/throughput stamps (byte-reproducible report, "
      "comparable to npd_run --no-perf output)");
  cli.parse(argc, argv);

  // Explicit --inputs are strict (any unreadable/non-shard file is a
  // hard error); --dir discovery is forgiving about *other* JSON files
  // that legitimately live next to shard reports — e.g. a previously
  // merged full report — and skips them with a warning.
  struct Input {
    std::string path;
    bool discovered;  ///< came from --dir, not named explicitly
  };
  // Dedup by canonical path: a report named by --inputs *and* found by
  // --dir must be read once, not rejected later as a duplicated job set.
  std::set<std::string> taken;
  const auto canonical = [](const std::string& path) {
    std::error_code ec;
    const std::filesystem::path resolved =
        std::filesystem::weakly_canonical(path, ec);
    return ec ? path : resolved.string();
  };
  std::vector<Input> inputs;
  for (std::string& path : split_list(inputs_arg, ',')) {
    if (taken.insert(canonical(path)).second) {
      inputs.push_back(Input{std::move(path), false});
    }
  }
  if (!dir_arg.empty()) {
    std::vector<std::string> found;
    for (const auto& entry : std::filesystem::directory_iterator(dir_arg)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        found.push_back(entry.path().string());
      }
    }
    std::sort(found.begin(), found.end());
    for (std::string& path : found) {
      if (taken.insert(canonical(path)).second) {
        inputs.push_back(Input{std::move(path), true});
      }
    }
  }
  if (inputs.empty()) {
    (void)std::fprintf(stderr,
                 "npd_merge: no inputs (pass --inputs a.json,b.json,... "
                 "and/or --dir DIR)\n");
    return 2;
  }

  const Timer timer;
  std::vector<shard::ShardRunReport> reports;
  reports.reserve(inputs.size());
  for (const Input& input : inputs) {
    try {
      Json document = Json::parse(tools::read_file(input.path));
      const Json* schema = document.find("schema");
      if (input.discovered &&
          (schema == nullptr || !schema->is_string() ||
           schema->as_string() != "npd.run_report_shard/1")) {
        (void)std::fprintf(stderr, "npd_merge: skipping %s (not a shard report)\n",
                     input.path.c_str());
        continue;
      }
      reports.push_back(shard::shard_report_from_json(document));
    } catch (const std::exception& error) {
      (void)std::fprintf(stderr, "npd_merge: %s: %s\n", input.path.c_str(),
                   error.what());
      return 2;
    }
  }

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);
  engine::RunReport report = shard::merge_shard_reports(registry, reports);
  engine::stamp_perf(report, timer.elapsed_seconds());

  const std::string json = report.to_json(!no_perf).dump(2);
  const bool to_stdout = tools::writes_to_stdout(out_path);
  if (!tools::write_output(json, out_path)) {
    return 1;
  }

  FILE* summary = tools::summary_stream(out_path);
  ConsoleTable table({"scenario", "jobs", "cells"});
  for (const engine::ScenarioRunReport& scenario : report.scenarios) {
    const Json* cells = scenario.aggregates.find("cells");
    table.add_row({scenario.name, std::to_string(scenario.jobs),
                   std::to_string(cells != nullptr ? cells->size() : 0)});
  }
  (void)std::fputs(table.render().c_str(), summary);
  (void)std::fprintf(summary,
               "\nmerged %lld shard report%s covering %lld jobs\n",
               static_cast<long long>(reports.size()),
               reports.size() == 1 ? "" : "s",
               static_cast<long long>(report.total_jobs));
  if (!to_stdout) {
    (void)std::fprintf(summary, "[merged report written to %s]\n",
                 out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    (void)std::fprintf(stderr, "npd_merge: %s\n", error.what());
    return 2;
  }
}
