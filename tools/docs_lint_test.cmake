# Docs lint: every scenario `npd_run --list` registers must appear in
# docs/cli.md — the CLI reference users are sent to — so a new scenario
# cannot land undocumented.
#
# Inputs: -DNPD_RUN=<npd_run> -DCLI_DOC=<docs/cli.md>

foreach(var NPD_RUN CLI_DOC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

execute_process(COMMAND "${NPD_RUN}" --list
  RESULT_VARIABLE result
  OUTPUT_VARIABLE listing
  ERROR_VARIABLE listing)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "npd_run --list failed (${result}):\n${listing}")
endif()

if(NOT EXISTS "${CLI_DOC}")
  message(FATAL_ERROR "docs/cli.md not found at '${CLI_DOC}'")
endif()
file(READ "${CLI_DOC}" doc)

# Scenario lines are exactly two-space indented ("  name  description");
# parameter lines are deeper-indented and never match.
string(REGEX MATCHALL "\n  [a-z0-9_]+" scenario_lines "\n${listing}")
set(missing "")
set(count 0)
foreach(line IN LISTS scenario_lines)
  string(REGEX REPLACE "\n  " "" scenario "${line}")
  math(EXPR count "${count} + 1")
  # The doc must name the scenario as inline code: `name`.
  if(NOT doc MATCHES "`${scenario}`")
    list(APPEND missing "${scenario}")
  endif()
endforeach()

if(count EQUAL 0)
  message(FATAL_ERROR "parsed no scenarios out of npd_run --list:\n${listing}")
endif()
if(missing)
  message(FATAL_ERROR
    "scenarios registered by npd_run --list but missing from docs/cli.md: "
    "${missing}")
endif()
message(STATUS "docs/cli.md documents all ${count} registered scenarios")
