# CTest driver for the supervised-launch determinism contract:
#
#   1. run a small two-scenario batch single-process (--no-perf),
#   2. npd_launch the same batch over 3 shard children through a fresh
#      result cache, with --test-crash injecting exactly one child crash
#      (after its jobs hit the cache, before its report exists) so the
#      supervisor must restart it and the restart must resume from the
#      cache,
#   3. require the auto-merged bytes to equal the single-process bytes,
#   4. re-launch with --cache-gc and require byte identity again — the
#      GC must never have evicted a live-batch blob (a missing blob
#      would silently re-execute; a wrong one cannot merge).
#
# Inputs: -DNPD_RUN=<npd_run> -DNPD_LAUNCH=<npd_launch> -DWORK_DIR=<dir>

foreach(var NPD_RUN NPD_LAUNCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(BATCH_ARGS
  --scenarios fixed_m,solver_sweep --reps 3 --seed 11
  --params fixed_m.n=150,fixed_m.m_points=2,solver_sweep.n_lo=120,solver_sweep.n_hi=120
  --no-perf)

function(run_checked log_name)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  file(WRITE "${WORK_DIR}/${log_name}.log" "${output}")
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "command failed (${result}): ${ARGN}\n${output}")
  endif()
  set(LAST_OUTPUT "${output}" PARENT_SCOPE)
endfunction()

function(require_identical a b what)
  file(READ "${a}" bytes_a)
  file(READ "${b}" bytes_b)
  if(NOT bytes_a STREQUAL bytes_b)
    message(FATAL_ERROR "${what}: '${a}' and '${b}' differ")
  endif()
  message(STATUS "${what}: byte-identical")
endfunction()

# 1. The single-process reference report.
run_checked(single "${NPD_RUN}" ${BATCH_ARGS} --threads 2
  --out "${WORK_DIR}/single.json")

# 2. Supervised launch: 3 children, one injected crash + restart,
#    resuming from the shared cache.
run_checked(launch "${NPD_LAUNCH}" ${BATCH_ARGS}
  --procs 3 --retries 2 --runner "${NPD_RUN}"
  --workdir "${WORK_DIR}/launch"
  --cache "${WORK_DIR}/cache"
  --test-crash "${WORK_DIR}/crash_marker"
  --out "${WORK_DIR}/launched.json")

# The injected crash must actually have happened (one restart) — else
# this test silently stops covering the supervision path.
if(NOT LAST_OUTPUT MATCHES "1 restart")
  message(FATAL_ERROR "expected exactly one injected restart:\n${LAST_OUTPUT}")
endif()

# 3. Auto-merged bytes == single-process bytes.
require_identical("${WORK_DIR}/launched.json" "${WORK_DIR}/single.json"
  "npd_launch 3-proc auto-merge vs single process")

# 4. Re-launch through the GC'd cache: every job must replay as a hit
#    (the GC kept the whole live batch), and the bytes must still match.
run_checked(relaunch_gc "${NPD_LAUNCH}" ${BATCH_ARGS}
  --procs 3 --runner "${NPD_RUN}"
  --workdir "${WORK_DIR}/relaunch"
  --cache "${WORK_DIR}/cache" --cache-gc
  --out "${WORK_DIR}/relaunched.json")
if(NOT LAST_OUTPUT MATCHES "cache GC: kept")
  message(FATAL_ERROR "expected a cache GC summary:\n${LAST_OUTPUT}")
endif()
require_identical("${WORK_DIR}/relaunched.json" "${WORK_DIR}/single.json"
  "cache-GC'd relaunch vs single process")
