# CTest driver for the telemetry out-of-band contract:
#
#   1. run a small batch single-process (--no-perf) as the reference,
#   2. run it again with --trace + --heartbeat and require the report
#      bytes to be identical — telemetry must never leak into results,
#   3. validate the trace (schema npd.trace/1, Chrome trace events) and
#      the final heartbeat (schema npd.heartbeat/1, done, all jobs
#      counted) as real JSON via cmake's string(JSON),
#   4. run with --quiet and require identical bytes plus zero summary
#      output,
#   5. npd_launch the batch over 3 shards with --watch (non-TTY) and an
#      injected crash: merged bytes identical again, watch lines and the
#      final `telemetry` block on the output, one restart observed, and
#      every per-shard heartbeat file terminal and valid.
#
# Inputs: -DNPD_RUN=<npd_run> -DNPD_LAUNCH=<npd_launch> -DWORK_DIR=<dir>

foreach(var NPD_RUN NPD_LAUNCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(BATCH_ARGS
  --scenarios fixed_m --reps 3 --seed 19
  --params fixed_m.n=150,fixed_m.m_points=2
  --no-perf)

function(run_checked log_name)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  file(WRITE "${WORK_DIR}/${log_name}.log" "${output}")
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "command failed (${result}): ${ARGN}\n${output}")
  endif()
  set(LAST_OUTPUT "${output}" PARENT_SCOPE)
endfunction()

function(require_identical a b what)
  file(READ "${a}" bytes_a)
  file(READ "${b}" bytes_b)
  if(NOT bytes_a STREQUAL bytes_b)
    message(FATAL_ERROR "${what}: '${a}' and '${b}' differ")
  endif()
  message(STATUS "${what}: byte-identical")
endfunction()

# json_field(<out-var> <file> <member>...) — parse-or-die JSON access.
function(json_field out file)
  file(READ "${file}" document)
  string(JSON value ERROR_VARIABLE json_error GET "${document}" ${ARGN})
  if(json_error)
    message(FATAL_ERROR "'${file}' ${ARGN}: ${json_error}")
  endif()
  set(${out} "${value}" PARENT_SCOPE)
endfunction()

# Require a terminal, fully-counted heartbeat file.
function(check_final_heartbeat file)
  json_field(schema "${file}" schema)
  if(NOT schema STREQUAL "npd.heartbeat/1")
    message(FATAL_ERROR "'${file}': schema '${schema}'")
  endif()
  json_field(done "${file}" done)
  if(NOT done STREQUAL "ON")  # cmake renders JSON true as ON
    message(FATAL_ERROR "'${file}': final heartbeat not done (${done})")
  endif()
  json_field(jobs_done "${file}" jobs_done)
  json_field(jobs_total "${file}" jobs_total)
  if(NOT jobs_done EQUAL jobs_total OR jobs_total EQUAL 0)
    message(FATAL_ERROR
      "'${file}': ${jobs_done}/${jobs_total} jobs in the final heartbeat")
  endif()
  message(STATUS "heartbeat '${file}': done, ${jobs_done}/${jobs_total}")
endfunction()

# 1. Reference report, no telemetry.
run_checked(reference "${NPD_RUN}" ${BATCH_ARGS} --threads 2
  --out "${WORK_DIR}/reference.json")

# 2. Same batch, fully instrumented.
run_checked(traced "${NPD_RUN}" ${BATCH_ARGS} --threads 2
  --trace "${WORK_DIR}/trace.json"
  --heartbeat "${WORK_DIR}/heartbeat.json"
  --out "${WORK_DIR}/traced.json")
require_identical("${WORK_DIR}/traced.json" "${WORK_DIR}/reference.json"
  "npd_run with --trace/--heartbeat vs without")
if(NOT LAST_OUTPUT MATCHES "npd_run: [0-9]+ jobs, [0-9]+ cache hits")
  message(FATAL_ERROR "expected the end-of-run summary line:\n${LAST_OUTPUT}")
endif()

# 3a. Trace: schema tag, and at least the three phase spans + per-job
#     spans as Chrome "X" events.
json_field(trace_schema "${WORK_DIR}/trace.json" schema)
if(NOT trace_schema STREQUAL "npd.trace/1")
  message(FATAL_ERROR "trace schema '${trace_schema}'")
endif()
file(READ "${WORK_DIR}/trace.json" trace_doc)
string(JSON event_count LENGTH "${trace_doc}" traceEvents)
if(event_count LESS 5)
  message(FATAL_ERROR "suspiciously few trace events (${event_count})")
endif()
json_field(first_phase "${WORK_DIR}/trace.json" traceEvents 0 ph)
if(NOT first_phase STREQUAL "X")
  message(FATAL_ERROR "first trace event is '${first_phase}', not 'X'")
endif()
message(STATUS "trace: npd.trace/1 with ${event_count} events")

# 3b. The final heartbeat of the instrumented run.
check_final_heartbeat("${WORK_DIR}/heartbeat.json")

# 4. --quiet: identical bytes, not a byte of summary output.
run_checked(quiet "${NPD_RUN}" ${BATCH_ARGS} --threads 2 --quiet
  --out "${WORK_DIR}/quiet.json")
require_identical("${WORK_DIR}/quiet.json" "${WORK_DIR}/reference.json"
  "npd_run --quiet vs default")
if(NOT LAST_OUTPUT STREQUAL "")
  message(FATAL_ERROR "--quiet still printed:\n${LAST_OUTPUT}")
endif()

# 5. Supervised watch: 3 shards through a cache, one injected crash, the
#    watch view rendering to a non-TTY stderr.
run_checked(watch "${NPD_LAUNCH}" ${BATCH_ARGS}
  --procs 3 --retries 2 --runner "${NPD_RUN}"
  --watch --watch-interval-ms 50
  --workdir "${WORK_DIR}/launch"
  --cache "${WORK_DIR}/cache"
  --test-crash "${WORK_DIR}/crash_marker"
  --out "${WORK_DIR}/watched.json")
require_identical("${WORK_DIR}/watched.json" "${WORK_DIR}/reference.json"
  "npd_launch --watch 3-proc auto-merge vs single process")
if(NOT LAST_OUTPUT MATCHES "\\[watch\\] [0-9]+/[0-9]+ jobs")
  message(FATAL_ERROR "no watch progress line:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "1 restart")
  message(FATAL_ERROR "expected exactly one injected restart:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "telemetry \\{\"schema\":\"npd.telemetry/1\"")
  message(FATAL_ERROR "no final telemetry block:\n${LAST_OUTPUT}")
endif()
foreach(shard RANGE 1 3)
  check_final_heartbeat("${WORK_DIR}/launch/shard_${shard}.heartbeat.json")
endforeach()
message(STATUS "watch roundtrip: OK")
