# CTest driver for the phase-transition atlas determinism contract
# (the acceptance bar for the npd.phase_atlas/1 grid):
#
#   1. run a small atlas — both design families, two channels, two n,
#      two m fractions — single-process with --threads 1 (--no-perf),
#   2. rerun the identical atlas with --threads 4 and require the
#      report bytes to be identical,
#   3. npd_launch the same atlas over 3 shard children through a fresh
#      result cache and require the auto-merged bytes to equal the
#      single-process bytes.
#
# Inputs: -DNPD_RUN=<npd_run> -DNPD_LAUNCH=<npd_launch> -DWORK_DIR=<dir>

foreach(var NPD_RUN NPD_LAUNCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(BATCH_ARGS --scenarios phase_atlas --reps 3 --seed 22 --no-perf)

# The axis lists are ';'-separated, which CMake would shred into list
# elements anywhere the value rode through an ${ARGN} expansion — so
# run_checked appends the --params value itself, quoted, at the one
# place it becomes a process argument.
set(ATLAS_PARAMS "phase_atlas.designs=paper;regular:6,phase_atlas.channels=z:0.05;z:0.25,phase_atlas.n_lo=40,phase_atlas.n_hi=60,phase_atlas.n_ppd=8,phase_atlas.m_fracs=0.7;1.3")

function(run_checked log_name)
  execute_process(COMMAND ${ARGN} --params "${ATLAS_PARAMS}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  file(WRITE "${WORK_DIR}/${log_name}.log" "${output}")
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "command failed (${result}): ${ARGN}\n${output}")
  endif()
endfunction()

function(require_identical a b what)
  file(READ "${a}" bytes_a)
  file(READ "${b}" bytes_b)
  if(NOT bytes_a STREQUAL bytes_b)
    message(FATAL_ERROR "${what}: '${a}' and '${b}' differ")
  endif()
  message(STATUS "${what}: byte-identical")
endfunction()

# 1. The single-thread reference atlas.
run_checked(threads1 "${NPD_RUN}" ${BATCH_ARGS} --threads 1
  --out "${WORK_DIR}/atlas_t1.json")

# 2. Same atlas on 4 threads: the grid must not depend on scheduling.
run_checked(threads4 "${NPD_RUN}" ${BATCH_ARGS} --threads 4
  --out "${WORK_DIR}/atlas_t4.json")
require_identical("${WORK_DIR}/atlas_t4.json" "${WORK_DIR}/atlas_t1.json"
  "phase_atlas --threads 4 vs --threads 1")

# 3. Same atlas as a 3-process supervised launch with auto-merge.
run_checked(launch "${NPD_LAUNCH}" ${BATCH_ARGS}
  --procs 3 --runner "${NPD_RUN}"
  --workdir "${WORK_DIR}/launch"
  --cache "${WORK_DIR}/cache"
  --out "${WORK_DIR}/atlas_launched.json")
require_identical("${WORK_DIR}/atlas_launched.json" "${WORK_DIR}/atlas_t1.json"
  "npd_launch 3-proc auto-merged atlas vs single process")
