// npd_serve — the long-lived reconstruction service.
//
// Listens on a Unix-domain socket (and/or localhost TCP), speaks the
// length-prefixed npd.request/1 → npd.response/1 protocol
// (docs/serving.md), keeps resolved designs resident in an LRU cache,
// micro-batches concurrent solve requests onto the engine's shared
// JobQueue worker pool, and derives per-request seeds deterministically
// from (--seed, request id) — so every served solve can be replayed
// offline with `npd_run --seed <derived>` and compared byte for byte
// (the tools.serve_roundtrip ctest does exactly that).
//
//   npd_serve --socket /tmp/npd.sock --threads 8
//   npd_serve --tcp 0 --port-file port.txt --daemonize --log serve.log
//
// Shutdown is always a drain, never a drop: SIGTERM/SIGINT, an
// op:"shutdown" request, --max-requests, or --idle-timeout-ms stop the
// accept loop, finish the queued work, flush the responses, then exit.

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "engine/builtin_scenarios.hpp"
#include "serve/server.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/file.hpp"
#include "util/heartbeat.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

using namespace npd;

/// Set by the signal handlers; the server polls it between accepts.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: poll/accept must wake promptly
  (void)::sigaction(SIGTERM, &action, nullptr);
  (void)::sigaction(SIGINT, &action, nullptr);
}

/// Write the whole buffer to `fd`, retrying EINTR (the readiness pipe).
void write_fully(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Background thread that rewrites an `npd.metrics/1` snapshot file on
/// a fixed cadence (temp+rename, so a watcher never reads a torn
/// write).  Same shape as `heartbeat::HeartbeatWriter`: purely
/// observational, a final snapshot on `stop()`, joined before exit.
class PeriodicMetricsWriter {
 public:
  PeriodicMetricsWriter(std::string path, double interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { loop(); });
  }

  ~PeriodicMetricsWriter() { stop(); }
  PeriodicMetricsWriter(const PeriodicMetricsWriter&) = delete;
  PeriodicMetricsWriter& operator=(const PeriodicMetricsWriter&) = delete;

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) {
        return;
      }
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
    write_snapshot();  // final state, after the server drained
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
      write_snapshot();
      cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(interval_ms_),
          [this] { return stopped_; });
    }
  }

  void write_snapshot() {
    (void)write_file_atomically(
        path_, metrics::snapshot_json(metrics::snapshot()).dump(2));
  }

  std::string path_;
  double interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

/// Parent side of --daemonize: read the child's readiness line ("ok
/// <port>" or "err <message>") and relay it.
int await_daemon_ready(int read_fd) {
  std::string line;
  char buffer[256];
  while (true) {
    const ssize_t n = ::read(read_fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    line.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(read_fd);
  if (line.rfind("ok", 0) == 0) {
    (void)std::fprintf(stderr, "npd_serve: daemon ready%s\n",
                       line.size() > 2 ? line.substr(2).c_str() : "");
    return 0;
  }
  (void)std::fprintf(stderr, "npd_serve: daemon failed to start: %s\n",
                     line.empty() ? "(no readiness report)" : line.c_str());
  return 1;
}

int run(int argc, char** argv) {
  CliParser cli("npd_serve",
                "Reconstruction daemon: serves npd.request/1 solves over "
                "a Unix-domain/localhost-TCP socket with request "
                "batching and resident designs.");
  const std::string& socket_path = cli.add_string(
      "socket", "", "Unix-domain socket path to listen on");
  const long long& tcp_port = cli.add_int(
      "tcp", -1, "localhost TCP port to listen on (0 = ephemeral, "
      "-1 = disabled); loopback only");
  const std::string& port_file = cli.add_string(
      "port-file", "", "write the bound TCP port to this file (how "
      "scripts learn an ephemeral --tcp 0 port)");
  const long long& threads = cli.add_int(
      "threads", 0, "solve worker threads (0 = all cores; responses are "
      "identical for any value)");
  const long long& seed = cli.add_int(
      "seed", 42, "server base seed; per-request seeds derive from "
      "(seed, request id)");
  const long long& batch_max = cli.add_int(
      "batch-max", 16, "max solve requests per micro-batch (1 disables "
      "batching)");
  const double& batch_window_ms = cli.add_double(
      "batch-window-ms", 1.0, "how long a queued request waits for "
      "batch companions (0 = no wait)");
  const long long& design_cache = cli.add_int(
      "design-cache", 64, "resident designs kept in the LRU cache");
  const long long& max_requests = cli.add_int(
      "max-requests", 0, "drain and exit after this many solve "
      "responses (0 = serve forever)");
  const double& idle_timeout_ms = cli.add_double(
      "idle-timeout-ms", 0.0, "drain and exit after this long with no "
      "connections and no queued work (0 = never)");
  const bool& daemonize = cli.add_flag(
      "daemonize", "fork to the background; the foreground process "
      "exits 0 only after the daemon is listening");
  const std::string& log_path = cli.add_string(
      "log", "", "with --daemonize: redirect the daemon's "
      "stdout/stderr here (default /dev/null)");
  const std::string& heartbeat_path = cli.add_string(
      "heartbeat", "", "write live progress (schema npd.heartbeat/1) "
      "to this file; responses count as jobs done");
  const long long& heartbeat_interval_ms = cli.add_int(
      "heartbeat-interval-ms", 200,
      "how often --heartbeat rewrites its file");
  const std::string& trace_path = cli.add_string(
      "trace", "", "write a Chrome-trace JSON (schema npd.trace/1) of "
      "the serve counters/spans at shutdown");
  const std::string& metrics_path = cli.add_string(
      "metrics", "", "write an npd.metrics/1 snapshot (request "
      "counters, queue-depth gauge, latency histograms) at shutdown");
  const double& metrics_interval_ms = cli.add_double(
      "metrics-interval-ms", 0.0, "with --metrics: also rewrite the "
      "snapshot file this often while serving (temp+rename, so "
      "watchers never read a torn write; 0 = shutdown only)");
  const std::string& profile_path = cli.add_string(
      "profile", "", "sample the daemon with a SIGPROF profiler and "
      "write folded stacks (schema npd.profile/1) at shutdown");
  const long long& profile_hz = cli.add_int(
      "profile-hz", 200, "sampling rate for --profile in samples/sec");
  const bool& quiet = cli.add_flag(
      "quiet", "suppress the startup and end-of-run summary lines "
      "(errors still print)");
  cli.parse(argc, argv);

  if (batch_max < 1) {
    throw std::invalid_argument("--batch-max: need at least 1");
  }
  if (seed < 0) {
    throw std::invalid_argument("--seed: need a non-negative seed");
  }
  if (heartbeat_interval_ms < 1) {
    throw std::invalid_argument(
        "--heartbeat-interval-ms: need a positive interval");
  }
  if (metrics_interval_ms < 0.0) {
    throw std::invalid_argument(
        "--metrics-interval-ms: need a non-negative interval");
  }
  if (metrics_interval_ms > 0.0 && metrics_path.empty()) {
    throw std::invalid_argument(
        "--metrics-interval-ms: needs --metrics FILE");
  }

  int ready_fd = -1;
  if (daemonize) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      throw std::runtime_error("npd_serve: pipe failed for --daemonize");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("npd_serve: fork failed for --daemonize");
    }
    if (pid > 0) {
      ::close(pipe_fds[1]);
      return await_daemon_ready(pipe_fds[0]);
    }
    // Daemon child: own session, readiness pipe kept, console handed
    // back (a supervisor like `cmake -P` must not wait on our stdio).
    ::close(pipe_fds[0]);
    ready_fd = pipe_fds[1];
    (void)::setsid();
    const std::string sink = log_path.empty() ? "/dev/null" : log_path;
    (void)std::freopen("/dev/null", "r", stdin);
    (void)std::freopen(sink.c_str(), "a", stdout);
    (void)std::freopen(sink.c_str(), "a", stderr);
  }

  install_signal_handlers();
  if (!trace_path.empty()) {
    trace::set_enabled(true);
  }
  // The daemon always records metrics: the live `op:"stats"` request
  // reads them, with or without a --metrics file to export at shutdown.
  metrics::set_enabled(true);
  bool profiling = false;
  if (!profile_path.empty()) {
    profiling = prof::start(static_cast<int>(profile_hz));
    if (!profiling) {
      (void)std::fprintf(stderr,
                         "npd_serve: --profile: sampling profiler "
                         "unavailable; continuing without it\n");
    }
  }

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);

  heartbeat::ProgressCounters progress;

  serve::ServerOptions options;
  options.unix_path = socket_path;
  options.tcp_port = static_cast<int>(tcp_port);
  options.threads = static_cast<Index>(threads);
  options.seed = static_cast<std::uint64_t>(seed);
  options.batch_max = static_cast<Index>(batch_max);
  options.batch_window_ms = batch_window_ms;
  options.design_cache_capacity = static_cast<Index>(design_cache);
  options.max_requests = max_requests;
  options.idle_timeout_ms = idle_timeout_ms;
  options.external_stop = &g_stop;
  if (!heartbeat_path.empty()) {
    if (max_requests > 0) {
      progress.set_jobs_total(max_requests);
    }
    options.progress = &progress;
  }

  serve::Server server(registry, options);
  try {
    server.start();
  } catch (const std::exception& error) {
    if (ready_fd >= 0) {
      write_fully(ready_fd, std::string("err ") + error.what());
      ::close(ready_fd);
    }
    throw;
  }

  if (!port_file.empty() && server.tcp_port() >= 0) {
    if (!tools::write_output(std::to_string(server.tcp_port()), port_file)) {
      return 1;
    }
  }
  std::optional<heartbeat::HeartbeatWriter> beat_writer;
  if (!heartbeat_path.empty()) {
    beat_writer.emplace(heartbeat_path, 0, 1, progress,
                        static_cast<int>(heartbeat_interval_ms));
  }
  std::optional<PeriodicMetricsWriter> metrics_writer;
  if (metrics_interval_ms > 0.0) {
    metrics_writer.emplace(metrics_path, metrics_interval_ms);
  }

  if (ready_fd >= 0) {
    std::string ready = "ok";
    if (server.tcp_port() >= 0) {
      ready += " tcp=" + std::to_string(server.tcp_port());
    }
    if (!socket_path.empty()) {
      ready += " socket=" + socket_path;
    }
    write_fully(ready_fd, ready);
    ::close(ready_fd);
  } else if (!quiet) {
    (void)std::fprintf(stderr, "npd_serve: listening%s%s\n",
                       socket_path.empty()
                           ? ""
                           : (" on " + socket_path).c_str(),
                       server.tcp_port() >= 0
                           ? (" tcp=" + std::to_string(server.tcp_port()))
                                 .c_str()
                           : "");
  }

  const Timer timer;
  const std::int64_t responses = server.run();

  if (beat_writer.has_value()) {
    beat_writer->stop();
  }
  if (metrics_writer.has_value()) {
    metrics_writer->stop();  // final snapshot after the drain
  } else if (!metrics_path.empty()) {
    if (!tools::write_output(
            metrics::snapshot_json(metrics::snapshot()).dump(2),
            metrics_path)) {
      return 1;
    }
    if (!quiet) {
      (void)std::fprintf(stderr, "[metrics written to %s]\n",
                         metrics_path.c_str());
    }
  }
  if (profiling) {
    prof::stop();
    const prof::Profile profile = prof::collect();
    if (!tools::write_output(prof::profile_json(profile).dump(2),
                             profile_path)) {
      return 1;
    }
    if (!quiet) {
      (void)std::fprintf(stderr, "[profile written to %s (%lld samples)]\n",
                         profile_path.c_str(),
                         static_cast<long long>(profile.samples));
    }
  }
  if (!quiet) {
    const serve::ServiceCounters& counters = server.counters();
    (void)std::fprintf(
        stderr,
        "npd_serve: %lld responses, %lld batches, %lld jobs, design "
        "cache %lld hits / %lld misses, %.2f s\n",
        static_cast<long long>(responses),
        static_cast<long long>(counters.batches.load()),
        static_cast<long long>(counters.jobs.load()),
        static_cast<long long>(counters.design_cache_hits.load()),
        static_cast<long long>(counters.design_cache_misses.load()),
        timer.elapsed_seconds());
  }
  if (!trace_path.empty()) {
    const trace::TraceSnapshot snapshot = trace::flush();
    if (!tools::write_output(trace::chrome_trace_json(snapshot).dump(2),
                             trace_path)) {
      return 1;
    }
    if (!quiet) {
      (void)std::fprintf(stderr, "[trace written to %s]\n",
                         trace_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    (void)std::fprintf(stderr, "npd_serve: %s\n", error.what());
    return 2;
  }
}
