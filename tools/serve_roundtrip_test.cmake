# CTest driver for the served-vs-offline bit-identity contract
# (docs/serving.md):
#
#   1. start an unbatched daemon A (--threads 1, --batch-max 1) and an
#      aggressively batching daemon B (--threads 4, --batch-max 8,
#      --batch-window-ms 50) with the same --seed,
#   2. solve one request on A, read the derived seed out of the
#      response, replay it offline via `npd_run --no-perf --seed <seed>`
#      and require the embedded report to be byte-identical,
#   3. abort a client mid-request against A (requests sent, connection
#      dropped before the responses) and prove A still answers,
#   4. send B a pipelined burst sharing one connection — same request
#      id first, so its derived seed matches A's — and require its
#      report bytes to equal A's (batched vs unbatched, 1 thread vs 4),
#      plus at least one response proving a micro-batch actually formed
#      (perf.batch_requests >= 2) and an unknown-scenario request in the
#      middle answered with status "error" without hurting neighbours,
#   5. probe B with op:"stats" — answered on the reader thread with a
#      live npd.metrics/1 snapshot whose serve.latency_seconds
#      histogram saw the burst — then drain both daemons with
#      op:"shutdown" and require B's periodic --metrics writer to
#      leave a valid snapshot on disk.
#
# Inputs: -DNPD_RUN -DNPD_SERVE -DNPD_LOADGEN -DWORK_DIR

foreach(var NPD_RUN NPD_SERVE NPD_LOADGEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(SOCK_A "${WORK_DIR}/a.sock")
set(SOCK_B "${WORK_DIR}/b.sock")

function(run_checked log_name)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  file(WRITE "${WORK_DIR}/${log_name}.log" "${output}")
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "command failed (${result}): ${ARGN}\n${output}")
  endif()
  set(LAST_OUTPUT "${output}" PARENT_SCOPE)
endfunction()

function(require_identical a b what)
  file(READ "${a}" bytes_a)
  file(READ "${b}" bytes_b)
  if(NOT bytes_a STREQUAL bytes_b)
    message(FATAL_ERROR "${what}: '${a}' and '${b}' differ")
  endif()
  message(STATUS "${what}: byte-identical")
endfunction()

function(json_field out file)
  file(READ "${file}" document)
  string(JSON value ERROR_VARIABLE json_error GET "${document}" ${ARGN})
  if(json_error)
    message(FATAL_ERROR "'${file}' ${ARGN}: ${json_error}")
  endif()
  set(${out} "${value}" PARENT_SCOPE)
endfunction()

# 1. Two daemons, same server seed, opposite batching/threading posture.
#    The idle timeout is a leak-proofing backstop: even a failing test
#    run leaves no daemon behind.
run_checked(serve_a "${NPD_SERVE}" --daemonize
  --socket "${SOCK_A}" --threads 1 --batch-max 1 --batch-window-ms 0
  --seed 42 --idle-timeout-ms 60000 --log "${WORK_DIR}/serve_a.log")
run_checked(serve_b "${NPD_SERVE}" --daemonize
  --socket "${SOCK_B}" --threads 4 --batch-max 8 --batch-window-ms 50
  --seed 42 --idle-timeout-ms 60000 --log "${WORK_DIR}/serve_b.log"
  --metrics "${WORK_DIR}/serve_b.metrics.json" --metrics-interval-ms 100)

# 2. One request on A; replay the derived seed offline.
set(REQ_PARAMS "n_lo=80;n_hi=80")
file(WRITE "${WORK_DIR}/req1.json"
  "{\"schema\":\"npd.request/1\",\"id\":\"roundtrip-1\",\"op\":\"solve\",\"scenario\":\"solver_sweep\",\"params\":\"${REQ_PARAMS}\",\"reps\":2}\n")
run_checked(probe_a "${NPD_LOADGEN}" --socket "${SOCK_A}"
  --probe "${WORK_DIR}/req1.json" --out "${WORK_DIR}/resp_a.json"
  --extract-report "${WORK_DIR}/report_served_a.json"
  --wait-ready-ms 10000)

json_field(resp_schema "${WORK_DIR}/resp_a.json" schema)
json_field(resp_status "${WORK_DIR}/resp_a.json" status)
json_field(resp_hash "${WORK_DIR}/resp_a.json" config_hash)
json_field(derived_seed "${WORK_DIR}/resp_a.json" seed)
if(NOT resp_schema STREQUAL "npd.response/1" OR NOT resp_status STREQUAL "ok")
  message(FATAL_ERROR
    "unexpected response: schema '${resp_schema}' status '${resp_status}'")
endif()
if(resp_hash STREQUAL "")
  message(FATAL_ERROR "response carries no config_hash")
endif()
message(STATUS "served solve ok: derived seed ${derived_seed}, "
  "config ${resp_hash}")

run_checked(offline "${NPD_RUN}"
  --scenarios solver_sweep --reps 2 --threads 1
  --seed "${derived_seed}"
  --params "solver_sweep.n_lo=80,solver_sweep.n_hi=80"
  --no-perf --out "${WORK_DIR}/report_offline.json")
require_identical("${WORK_DIR}/report_served_a.json"
  "${WORK_DIR}/report_offline.json"
  "served response vs offline npd_run with the derived seed")

# 3. The killed-mid-request client: send two solves, vanish without
#    reading, then prove the daemon still answers on a new connection.
file(WRITE "${WORK_DIR}/req_abort.json"
  "[{\"schema\":\"npd.request/1\",\"id\":\"abort-1\",\"scenario\":\"solver_sweep\",\"params\":\"${REQ_PARAMS}\"},
{\"schema\":\"npd.request/1\",\"id\":\"abort-2\",\"scenario\":\"solver_sweep\",\"params\":\"${REQ_PARAMS}\"}]\n")
run_checked(abort "${NPD_LOADGEN}" --socket "${SOCK_A}"
  --probe "${WORK_DIR}/req_abort.json" --probe-abort --wait-ready-ms 10000)
run_checked(probe_a_again "${NPD_LOADGEN}" --socket "${SOCK_A}"
  --probe "${WORK_DIR}/req1.json" --out "${WORK_DIR}/resp_a2.json"
  --extract-report "${WORK_DIR}/report_served_a2.json"
  --wait-ready-ms 10000)
require_identical("${WORK_DIR}/report_served_a2.json"
  "${WORK_DIR}/report_offline.json"
  "daemon answer after a killed-mid-request client")

# 4. Pipelined burst on B: roundtrip-1 first (same id + config as on A),
#    distinct designs behind it, one poisoned request in the middle.
file(WRITE "${WORK_DIR}/req_burst.json"
  "[{\"schema\":\"npd.request/1\",\"id\":\"roundtrip-1\",\"scenario\":\"solver_sweep\",\"params\":\"${REQ_PARAMS}\",\"reps\":2},
{\"schema\":\"npd.request/1\",\"id\":\"burst-1\",\"scenario\":\"solver_sweep\",\"params\":\"${REQ_PARAMS}\"},
{\"schema\":\"npd.request/1\",\"id\":\"burst-2\",\"scenario\":\"solver_sweep\",\"params\":\"n_lo=60;n_hi=60\"},
{\"schema\":\"npd.request/1\",\"id\":\"burst-bad\",\"scenario\":\"no_such_scenario\"},
{\"schema\":\"npd.request/1\",\"id\":\"burst-3\",\"scenario\":\"solver_sweep\",\"params\":\"${REQ_PARAMS}\",\"seed\":7}]\n")
run_checked(burst "${NPD_LOADGEN}" --socket "${SOCK_B}"
  --probe "${WORK_DIR}/req_burst.json" --out "${WORK_DIR}/resp_burst.json"
  --extract-report "${WORK_DIR}/report_served_b.json"
  --wait-ready-ms 10000)
require_identical("${WORK_DIR}/report_served_b.json"
  "${WORK_DIR}/report_offline.json"
  "batched 4-thread daemon vs unbatched 1-thread daemon vs offline")

json_field(burst_batch "${WORK_DIR}/resp_burst.json" 0 perf batch_requests)
if(burst_batch LESS 2)
  message(FATAL_ERROR
    "burst never formed a micro-batch (batch_requests ${burst_batch})")
endif()
json_field(bad_status "${WORK_DIR}/resp_burst.json" 3 status)
json_field(bad_error "${WORK_DIR}/resp_burst.json" 3 error)
if(NOT bad_status STREQUAL "error" OR
   NOT bad_error MATCHES "unknown scenario")
  message(FATAL_ERROR
    "poisoned request: status '${bad_status}', error '${bad_error}'")
endif()
json_field(neighbour_status "${WORK_DIR}/resp_burst.json" 4 status)
json_field(explicit_seed "${WORK_DIR}/resp_burst.json" 4 seed)
if(NOT neighbour_status STREQUAL "ok" OR NOT explicit_seed EQUAL 7)
  message(FATAL_ERROR "explicit-seed neighbour: status "
    "'${neighbour_status}', seed ${explicit_seed}")
endif()
message(STATUS
  "burst: micro-batch of ${burst_batch}, error isolated, seeds echoed")

# 4b. Live introspection: op:"stats" on B is answered on the reader
#     thread with the daemon's uptime/queue block and a full
#     npd.metrics/1 snapshot whose latency histogram has absorbed the
#     burst just served.
file(WRITE "${WORK_DIR}/req_stats.json"
  "{\"schema\":\"npd.request/1\",\"id\":\"stats-1\",\"op\":\"stats\"}\n")
run_checked(stats_probe "${NPD_LOADGEN}" --socket "${SOCK_B}"
  --probe "${WORK_DIR}/req_stats.json" --out "${WORK_DIR}/resp_stats.json"
  --wait-ready-ms 10000)
json_field(stats_status "${WORK_DIR}/resp_stats.json" status)
json_field(stats_op "${WORK_DIR}/resp_stats.json" op)
if(NOT stats_status STREQUAL "ok" OR NOT stats_op STREQUAL "stats")
  message(FATAL_ERROR
    "stats probe: status '${stats_status}', op '${stats_op}'")
endif()
json_field(stats_sent "${WORK_DIR}/resp_stats.json" stats responses_sent)
json_field(stats_metrics_schema "${WORK_DIR}/resp_stats.json"
  stats metrics schema)
if(NOT stats_metrics_schema STREQUAL "npd.metrics/1")
  message(FATAL_ERROR "live metrics schema '${stats_metrics_schema}'")
endif()
json_field(latency_count "${WORK_DIR}/resp_stats.json"
  stats metrics histograms serve.latency_seconds count)
if(latency_count LESS 1)
  message(FATAL_ERROR
    "serve.latency_seconds empty in the live snapshot (${latency_count})")
endif()
message(STATUS "stats probe: ${stats_sent} responses served, "
  "latency histogram count ${latency_count}")

# 5. Drain both daemons.  B's periodic writer must leave an on-disk
#    npd.metrics/1 snapshot that also carries the latency histogram
#    (poll briefly: the final write happens as the daemon exits).
run_checked(shutdown_a "${NPD_LOADGEN}" --socket "${SOCK_A}" --send-shutdown)
run_checked(shutdown_b "${NPD_LOADGEN}" --socket "${SOCK_B}" --send-shutdown)
set(disk_latency 0)
foreach(attempt RANGE 100)
  if(EXISTS "${WORK_DIR}/serve_b.metrics.json")
    file(READ "${WORK_DIR}/serve_b.metrics.json" disk_doc)
    string(JSON disk_latency ERROR_VARIABLE disk_error
      GET "${disk_doc}" histograms serve.latency_seconds count)
    if(NOT disk_error AND disk_latency GREATER_EQUAL 1)
      break()
    endif()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(disk_latency LESS 1)
  message(FATAL_ERROR
    "on-disk snapshot never showed serve.latency_seconds (${disk_latency})")
endif()
json_field(disk_schema "${WORK_DIR}/serve_b.metrics.json" schema)
if(NOT disk_schema STREQUAL "npd.metrics/1")
  message(FATAL_ERROR "on-disk snapshot schema '${disk_schema}'")
endif()
message(STATUS "on-disk snapshot: npd.metrics/1, latency count "
  "${disk_latency}")
message(STATUS "serve roundtrip: OK")
