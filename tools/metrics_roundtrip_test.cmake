# CTest driver for the metrics/profiler out-of-band contract:
#
#   1. run a batch single-process (--no-perf) as the reference,
#   2. run it again with --metrics + --profile + a fast heartbeat and
#      require the report bytes to be identical — observability must
#      never leak into results,
#   3. validate the metrics snapshot (schema npd.metrics/1, the
#      jobs.executed counter equal to the batch's job count) and the
#      profile (schema npd.profile/1, samples captured, at least one
#      folded stack symbolized down to an npd:: engine frame),
#   4. npd_launch the batch over 3 shards with --metrics: merged report
#      bytes identical again, the shard snapshots folded into one
#      deterministic merge with the full job count, and the merged
#      snapshot embedded in the final telemetry block.
#
# The workload is sized (~40 jobs, several hundred ms of engine CPU on
# the CI box) so the 500 Hz profiler reliably lands samples inside the
# solver, not just in process startup.
#
# Inputs: -DNPD_RUN=<npd_run> -DNPD_LAUNCH=<npd_launch> -DWORK_DIR=<dir>

foreach(var NPD_RUN NPD_LAUNCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(BATCH_ARGS
  --scenarios fixed_m --reps 10 --seed 19
  --params fixed_m.n=2000,fixed_m.m_points=4
  --no-perf)
set(EXPECTED_JOBS 40)  # reps * m_points

function(run_checked log_name)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  file(WRITE "${WORK_DIR}/${log_name}.log" "${output}")
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "command failed (${result}): ${ARGN}\n${output}")
  endif()
  set(LAST_OUTPUT "${output}" PARENT_SCOPE)
endfunction()

function(require_identical a b what)
  file(READ "${a}" bytes_a)
  file(READ "${b}" bytes_b)
  if(NOT bytes_a STREQUAL bytes_b)
    message(FATAL_ERROR "${what}: '${a}' and '${b}' differ")
  endif()
  message(STATUS "${what}: byte-identical")
endfunction()

# json_field(<out-var> <file> <member>...) — parse-or-die JSON access.
function(json_field out file)
  file(READ "${file}" document)
  string(JSON value ERROR_VARIABLE json_error GET "${document}" ${ARGN})
  if(json_error)
    message(FATAL_ERROR "'${file}' ${ARGN}: ${json_error}")
  endif()
  set(${out} "${value}" PARENT_SCOPE)
endfunction()

# Require an npd.metrics/1 snapshot whose jobs.executed counter equals
# the batch's job count.
function(check_metrics_snapshot file what)
  json_field(schema "${file}" schema)
  if(NOT schema STREQUAL "npd.metrics/1")
    message(FATAL_ERROR "'${file}': schema '${schema}'")
  endif()
  json_field(executed "${file}" counters jobs.executed)
  if(NOT executed EQUAL EXPECTED_JOBS)
    message(FATAL_ERROR
      "'${file}': jobs.executed is ${executed}, expected ${EXPECTED_JOBS}")
  endif()
  message(STATUS "${what}: npd.metrics/1, jobs.executed=${executed}")
endfunction()

# 1. Reference report, no observability.
run_checked(reference "${NPD_RUN}" ${BATCH_ARGS} --threads 2
  --out "${WORK_DIR}/reference.json")

# 2. Same batch with the full observability kit attached.
run_checked(instrumented "${NPD_RUN}" ${BATCH_ARGS} --threads 2
  --metrics "${WORK_DIR}/metrics.json"
  --profile "${WORK_DIR}/profile.json" --profile-hz 500
  --heartbeat "${WORK_DIR}/heartbeat.json" --heartbeat-interval-ms 100
  --out "${WORK_DIR}/instrumented.json")
require_identical("${WORK_DIR}/instrumented.json" "${WORK_DIR}/reference.json"
  "npd_run with --metrics/--profile vs without")
if(NOT LAST_OUTPUT MATCHES "\\[metrics written to ")
  message(FATAL_ERROR "no metrics confirmation line:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "\\[profile written to .* \\(([0-9]+) samples\\)\\]")
  message(FATAL_ERROR "no profile confirmation line:\n${LAST_OUTPUT}")
endif()

# 3a. The metrics snapshot counted every job exactly once.
check_metrics_snapshot("${WORK_DIR}/metrics.json" "single-process metrics")

# 3b. The profile captured real samples and symbolized the engine.
json_field(profile_schema "${WORK_DIR}/profile.json" schema)
if(NOT profile_schema STREQUAL "npd.profile/1")
  message(FATAL_ERROR "profile schema '${profile_schema}'")
endif()
json_field(profile_hz "${WORK_DIR}/profile.json" hz)
if(NOT profile_hz EQUAL 500)
  message(FATAL_ERROR "profile hz ${profile_hz}, expected 500")
endif()
json_field(profile_samples "${WORK_DIR}/profile.json" samples)
if(profile_samples LESS 1)
  message(FATAL_ERROR "profiler captured no samples")
endif()
file(READ "${WORK_DIR}/profile.json" profile_doc)
string(JSON stack_count LENGTH "${profile_doc}" stacks)
if(stack_count LESS 1)
  message(FATAL_ERROR "profile has no folded stacks")
endif()
# Sum of folded-stack counts must account for every sample, and at
# least one stack must reach a symbolized npd:: engine frame (this is
# what ENABLE_EXPORTS on npd_run buys; without it dladdr sees only
# [unknown] frames).
set(counted 0)
set(engine_frames 0)
math(EXPR last_stack "${stack_count} - 1")
foreach(i RANGE 0 ${last_stack})
  string(JSON one_count GET "${profile_doc}" stacks ${i} count)
  string(JSON one_stack GET "${profile_doc}" stacks ${i} stack)
  math(EXPR counted "${counted} + ${one_count}")
  if(one_stack MATCHES "npd::")
    math(EXPR engine_frames "${engine_frames} + 1")
  endif()
endforeach()
if(NOT counted EQUAL profile_samples)
  message(FATAL_ERROR
    "folded stacks count ${counted} samples, header says ${profile_samples}")
endif()
if(engine_frames LESS 1)
  message(FATAL_ERROR
    "no folded stack contains an npd:: engine frame — symbolization broke")
endif()
message(STATUS "profile: npd.profile/1, ${profile_samples} samples over "
  "${stack_count} stacks (${engine_frames} with engine frames)")

# 4. Supervised launch: 3 shard children each writing a snapshot, the
#    supervisor folding them into one deterministic merge.
run_checked(launched "${NPD_LAUNCH}" ${BATCH_ARGS}
  --procs 3 --runner "${NPD_RUN}"
  --workdir "${WORK_DIR}/launch"
  --metrics "${WORK_DIR}/merged_metrics.json"
  --heartbeat-interval-ms 100
  --out "${WORK_DIR}/launched.json")
require_identical("${WORK_DIR}/launched.json" "${WORK_DIR}/reference.json"
  "npd_launch --metrics 3-proc auto-merge vs single process")
if(NOT LAST_OUTPUT MATCHES "\\[merged metrics written to ")
  message(FATAL_ERROR "no merged-metrics confirmation line:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "telemetry \\{\"schema\":\"npd.telemetry/1\"")
  message(FATAL_ERROR "no final telemetry block:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "\"metrics\"")
  message(FATAL_ERROR
    "telemetry block does not embed the merged metrics:\n${LAST_OUTPUT}")
endif()
check_metrics_snapshot("${WORK_DIR}/merged_metrics.json" "3-shard merge")
foreach(shard RANGE 1 3)
  json_field(shard_schema "${WORK_DIR}/launch/shard_${shard}.metrics.json"
    schema)
  if(NOT shard_schema STREQUAL "npd.metrics/1")
    message(FATAL_ERROR "shard ${shard} snapshot schema '${shard_schema}'")
  endif()
endforeach()
message(STATUS "metrics roundtrip: OK")
