# CTest driver for the sharded-execution determinism contract:
#
#   1. run a small two-scenario batch single-process (--no-perf),
#   2. run the same batch as 3 shards through a fresh result cache,
#   3. npd_merge the partial reports and require the merged bytes to
#      equal the single-process bytes,
#   4. delete one shard report, reproduce it from the (now warm) cache
#      alone, re-merge, and require byte identity again — the
#      kill-and-resume story.
#
# Inputs: -DNPD_RUN=<npd_run> -DNPD_MERGE=<npd_merge> -DWORK_DIR=<dir>

foreach(var NPD_RUN NPD_MERGE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(BATCH_ARGS
  --scenarios fixed_m,solver_sweep --reps 3 --seed 11 --threads 2
  --params fixed_m.n=150,fixed_m.m_points=2,solver_sweep.n_lo=120,solver_sweep.n_hi=120
  --no-perf)

function(run_checked)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "command failed (${result}): ${ARGN}\n${output}")
  endif()
endfunction()

function(require_identical a b what)
  file(READ "${a}" bytes_a)
  file(READ "${b}" bytes_b)
  if(NOT bytes_a STREQUAL bytes_b)
    message(FATAL_ERROR "${what}: '${a}' and '${b}' differ")
  endif()
  message(STATUS "${what}: byte-identical")
endfunction()

# 1. The single-process reference report.
run_checked("${NPD_RUN}" ${BATCH_ARGS} --out "${WORK_DIR}/single.json")

# 2. The same batch as 3 shards, all writing through one result cache.
foreach(i RANGE 1 3)
  run_checked("${NPD_RUN}" ${BATCH_ARGS} --shard ${i}/3
    --cache "${WORK_DIR}/cache" --out "${WORK_DIR}/shard${i}.json")
endforeach()

# 3. Merge and compare against the single-process bytes.
run_checked("${NPD_MERGE}"
  --inputs "${WORK_DIR}/shard1.json,${WORK_DIR}/shard2.json,${WORK_DIR}/shard3.json"
  --no-perf --out "${WORK_DIR}/merged.json")
require_identical("${WORK_DIR}/merged.json" "${WORK_DIR}/single.json"
  "3-shard merge vs single process")

# 4. Kill-and-resume: lose one shard report, reproduce it purely from the
#    cache, and merge again (this time via --dir).
file(REMOVE "${WORK_DIR}/shard2.json")
file(RENAME "${WORK_DIR}/merged.json" "${WORK_DIR}/merged_first.json")
run_checked("${NPD_RUN}" ${BATCH_ARGS} --shard 2/3
  --cache "${WORK_DIR}/cache" --out "${WORK_DIR}/shard2.json")
file(MAKE_DIRECTORY "${WORK_DIR}/shards")
foreach(i RANGE 1 3)
  file(COPY "${WORK_DIR}/shard${i}.json" DESTINATION "${WORK_DIR}/shards")
endforeach()
run_checked("${NPD_MERGE}" --dir "${WORK_DIR}/shards"
  --no-perf --out "${WORK_DIR}/merged_resumed.json")
require_identical("${WORK_DIR}/merged_resumed.json" "${WORK_DIR}/single.json"
  "cache-resumed merge vs single process")
