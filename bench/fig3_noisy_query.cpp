// Figure 3: required number of queries vs n in the noisy query model
// (Gaussian N(0, λ²) per query, λ = 1) compared against the noiseless
// baseline, θ = 0.25.  Theorem 2 predicts both curves coincide
// asymptotically because λ² = o(m/ln n) in this regime.
//
// Thin wrapper over the batch engine's registered `fig3` scenario: the
// grid loop, worker scheduling and aggregation live in src/engine, and
// this binary only formats the scenario's aggregates.  The engine
// replicates this bench's historical per-repetition seed streams, so
// the numbers are unchanged for any given --seed.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig3_noisy_query",
                "required #queries vs n, noisy query model vs noiseless");
  const auto common = bench::add_common_options(cli, 5, "fig3_noisy_query.csv");
  const auto& max_n = cli.add_int("max-n", 10000, "largest n in the grid");
  const auto& lambda = cli.add_double("lambda", 1.0, "query noise stddev");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Figure 3",
                      "required queries, noisy query model (lambda=" +
                          std::to_string(lambda) + ") vs noiseless");

  const bool paper = common.paper;

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);
  engine::BatchRequest request;
  request.scenario_names = {"fig3"};
  request.config.seed = static_cast<std::uint64_t>(common.seed);
  request.config.reps = paper ? Index{25} : static_cast<Index>(common.reps);
  request.config.threads = static_cast<Index>(common.threads);
  request.overrides.push_back(
      {"fig3", "max_n",
       paper ? "100000" : std::to_string(static_cast<Index>(max_n))});
  request.overrides.push_back({"fig3", "ppd", paper ? "3" : "2"});
  // Shortest round-trip formatting: the scenario re-parses the exact
  // double the flag carried.
  request.overrides.push_back(
      {"fig3", "lambda", Json::format_number(lambda)});

  const engine::RunReport report = engine::run_batch(registry, request);
  const Json& cells = report.scenarios[0].aggregates.at("cells");

  ConsoleTable table({"n", "k", "channel", "median m", "mean m", "q1", "q3",
                      "theory m"});
  bench::OptionalCsv csv(common.csv_path,
                         {"n", "k", "lambda", "median_m", "mean_m", "q1",
                          "q3", "min_m", "max_m", "theory"});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Json& cell = cells.at(i);
    const Json& m = cell.at("metrics").at("m");
    const auto n = cell.at("n").as_int();
    const auto k = cell.at("k").as_int();
    const double lam = cell.at("lambda").as_double();
    const double theory =
        core::theory::noisy_query_sublinear(n, kTheta, 0.05);
    table.add_row_doubles({static_cast<double>(n), static_cast<double>(k),
                           lam, m.at("median").as_double(),
                           m.at("mean").as_double(), m.at("q1").as_double(),
                           m.at("q3").as_double(), std::ceil(theory)});
    csv.row({static_cast<double>(n), static_cast<double>(k), lam,
             m.at("median").as_double(), m.at("mean").as_double(),
             m.at("q1").as_double(), m.at("q3").as_double(),
             m.at("min").as_double(), m.at("max").as_double(), theory});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): the noisy-query curve sits slightly above\n"
      "the noiseless one at small n and converges to it as n grows\n"
      "(Theorem 2: lambda^2 = o(m/ln n) makes the noise asymptotically free).\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
