// Figure 3: required number of queries vs n in the noisy query model
// (Gaussian N(0, λ²) per query, λ = 1) compared against the noiseless
// baseline, θ = 0.25.  Theorem 2 predicts both curves coincide
// asymptotically because λ² = o(m/ln n) in this regime.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig3_noisy_query",
                "required #queries vs n, noisy query model vs noiseless");
  const auto common = bench::add_common_options(cli, 5, "fig3_noisy_query.csv");
  const auto& max_n = cli.add_int("max-n", 10000, "largest n in the grid");
  const auto& lambda = cli.add_double("lambda", 1.0, "query noise stddev");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Figure 3",
                      "required queries, noisy query model (lambda=" +
                          std::to_string(lambda) + ") vs noiseless");

  const bool paper = common.paper;
  const Index hi = paper ? 100000 : static_cast<Index>(max_n);
  const Index reps = paper ? 25 : static_cast<Index>(common.reps);
  const auto ns = harness::log_grid(100, hi, paper ? 3 : 2);

  ConsoleTable table({"n", "k", "channel", "median m", "mean m", "q1", "q3",
                      "theory m"});
  bench::OptionalCsv csv(common.csv_path,
                         {"n", "k", "lambda", "median_m", "mean_m", "q1",
                          "q3", "min_m", "max_m", "theory"});

  struct Series {
    const char* label;
    double lambda;
  };
  const std::vector<Series> series{{"noiseless", 0.0},
                                   {"noisy", lambda}};

  for (const Series& s : series) {
    const double lam = s.lambda;
    const auto rows = harness::required_queries_sweep(
        ns, reps, [](Index n) { return pooling::sublinear_k(n, kTheta); },
        [](Index n) { return pooling::paper_design(n); },
        [lam](Index, Index) {
          return lam > 0.0 ? noise::make_gaussian_channel(lam)
                           : noise::make_noiseless();
        },
        static_cast<std::uint64_t>(common.seed) +
            static_cast<std::uint64_t>(lam * 977.0),
        {}, static_cast<Index>(common.threads));

    for (const auto& row : rows) {
      const double theory =
          core::theory::noisy_query_sublinear(row.n, kTheta, 0.05);
      table.add_row_doubles({static_cast<double>(row.n),
                             static_cast<double>(row.k), lam,
                             row.summary.median, row.mean_m, row.summary.q1,
                             row.summary.q3, std::ceil(theory)});
      csv.row({static_cast<double>(row.n), static_cast<double>(row.k), lam,
               row.summary.median, row.mean_m, row.summary.q1, row.summary.q3,
               row.summary.min, row.summary.max, theory});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): the noisy-query curve sits slightly above\n"
      "the noiseless one at small n and converges to it as n grows\n"
      "(Theorem 2: lambda^2 = o(m/ln n) makes the noise asymptotically free).\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
