// Figure 6: success rate of exact reconstruction vs number of queries m
// at n = 1000 for the Z-channel with p ∈ {0.1, 0.3, 0.5}, comparing the
// distributed greedy algorithm (Algorithm 1) against AMP.  The paper runs
// 100 repetitions per point (use --paper); the dashed line is the
// Theorem 1 bound for p = 0.1 with ε = 0.1.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"
#include "util/ascii_plot.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig6_success_amp",
                "success rate vs m at n=1000: greedy vs AMP, Z-channel");
  const auto common =
      bench::add_common_options(cli, 10, "fig6_success_amp.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& m_step = cli.add_int("m-step", 50, "grid step in m");
  const auto& m_max = cli.add_int("m-max", 600, "largest m");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Figure 6",
                      "success rate vs m, greedy vs AMP, n = 1000");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, kTheta);
  const Index reps = common.paper ? 100 : static_cast<Index>(common.reps);
  const auto ms = harness::linear_grid(static_cast<Index>(m_step),
                                       static_cast<Index>(m_max),
                                       static_cast<Index>(m_step));
  const std::vector<double> ps{0.1, 0.3, 0.5};

  const double theory_m =
      core::theory::z_channel_sublinear(n, kTheta, 0.1, 0.1);
  std::printf("n = %lld, k = %lld, theory bound (p=0.1, eps=0.1): m = %.0f\n\n",
              static_cast<long long>(n), static_cast<long long>(k),
              std::ceil(theory_m));

  std::vector<PlotSeries> plot;
  ConsoleTable table({"m", "p", "greedy success", "amp success",
                      "greedy overlap", "amp overlap"});
  bench::OptionalCsv csv(common.csv_path,
                         {"m", "p", "greedy_success", "amp_success",
                          "greedy_overlap", "amp_overlap"});

  for (const double p : ps) {
    const auto design_of_n = [](Index nn) { return pooling::paper_design(nn); };
    const auto factory = [p](Index, Index) { return noise::make_z_channel(p); };
    const auto seed = static_cast<std::uint64_t>(common.seed) +
                      static_cast<std::uint64_t>(p * 4051.0);

    const auto greedy = harness::success_sweep(
        n, k, ms, reps, design_of_n, factory, harness::Algorithm::Greedy,
        seed, {}, static_cast<Index>(common.threads));
    const auto amp = harness::success_sweep(
        n, k, ms, reps, design_of_n, factory, harness::Algorithm::Amp, seed,
        {}, static_cast<Index>(common.threads));

    PlotSeries greedy_series{.label = "greedy p=" + format_double(p),
                             .x = {},
                             .y = {},
                             .marker = static_cast<char>('1' + (p > 0.2) +
                                                         (p > 0.4))};
    PlotSeries amp_series{.label = "AMP    p=" + format_double(p),
                          .x = {},
                          .y = {},
                          .marker = static_cast<char>('a' + (p > 0.2) +
                                                      (p > 0.4))};
    for (std::size_t i = 0; i < ms.size(); ++i) {
      table.add_row_doubles({static_cast<double>(ms[i]), p,
                             greedy[i].success_rate, amp[i].success_rate,
                             greedy[i].mean_overlap, amp[i].mean_overlap});
      csv.row({static_cast<double>(ms[i]), p, greedy[i].success_rate,
               amp[i].success_rate, greedy[i].mean_overlap,
               amp[i].mean_overlap});
      greedy_series.x.push_back(static_cast<double>(ms[i]));
      greedy_series.y.push_back(greedy[i].success_rate);
      amp_series.x.push_back(static_cast<double>(ms[i]));
      amp_series.y.push_back(amp[i].success_rate);
    }
    plot.push_back(std::move(greedy_series));
    plot.push_back(std::move(amp_series));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s",
              render_plot(plot, PlotOptions{.width = 72,
                                            .height = 18,
                                            .x_scale = AxisScale::Linear,
                                            .y_scale = AxisScale::Linear,
                                            .x_label = "queries m",
                                            .y_label = "success rate",
                                            .title = "Figure 6"})
                  .c_str());
  std::printf(
      "\nExpected shape (paper): both algorithms show a phase transition\n"
      "from failure to success as m grows; AMP's window is narrower and\n"
      "sits at smaller m (AMP wins), and both shift right as p grows.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
