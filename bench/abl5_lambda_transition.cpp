// Ablation A5: the phase transition of Theorem 2.  At fixed m, sweep the
// query-noise level λ across the achievability regime (λ² = o(m/ln n)),
// the critical scale λ² ≍ m/ln n, and the failure regime (λ² = Ω(m)).
// Success collapses around the predicted control ratio λ²·ln(n)/m ≈ 1.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("abl5_lambda_transition",
                "Theorem 2 phase transition in the noise level lambda");
  const auto common =
      bench::add_common_options(cli, 20, "abl5_lambda_transition.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A5",
                      "success vs lambda at fixed m (Theorem 2 regimes)");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, 0.25);
  const Index reps = common.paper ? 100 : static_cast<Index>(common.reps);
  // Twice the noiseless bound: comfortably inside the achievable regime
  // at lambda = 0 so the collapse is attributable to noise alone.
  const auto m = static_cast<Index>(
      std::ceil(2.0 * core::theory::noisy_query_sublinear(n, 0.25, 0.1)));

  std::printf("n = %lld, k = %lld, fixed m = %lld\n\n",
              static_cast<long long>(n), static_cast<long long>(k),
              static_cast<long long>(m));

  const double critical_lambda =
      std::sqrt(static_cast<double>(m) / std::log(static_cast<double>(n)));
  std::vector<double> lambdas{0.0, 1.0, 2.0, 4.0, 8.0};
  lambdas.push_back(0.25 * critical_lambda);
  lambdas.push_back(0.5 * critical_lambda);
  lambdas.push_back(critical_lambda);
  lambdas.push_back(2.0 * critical_lambda);
  lambdas.push_back(std::sqrt(static_cast<double>(m)));        // λ² = m
  lambdas.push_back(2.0 * std::sqrt(static_cast<double>(m)));  // λ² = 4m

  ConsoleTable table(
      {"lambda", "ratio l^2·ln(n)/m", "success", "overlap"});
  bench::OptionalCsv csv(common.csv_path,
                         {"lambda", "ratio", "success", "overlap"});

  for (const double lambda : lambdas) {
    const auto points = harness::success_sweep(
        n, k, {m}, reps, [](Index nn) { return pooling::paper_design(nn); },
        [lambda](Index, Index) {
          return lambda > 0.0 ? noise::make_gaussian_channel(lambda)
                              : noise::make_noiseless();
        },
        harness::Algorithm::Greedy,
        static_cast<std::uint64_t>(common.seed) +
            static_cast<std::uint64_t>(lambda * 97.0),
        {}, static_cast<Index>(common.threads));
    const double ratio = lambda > 0.0
                             ? core::theory::noisy_query_noise_ratio(
                                   lambda, static_cast<double>(m), n)
                             : 0.0;
    table.add_row_doubles({lambda, ratio, points[0].success_rate,
                           points[0].mean_overlap});
    csv.row({lambda, ratio, points[0].success_rate, points[0].mean_overlap});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: success stays ~1 while the ratio is <<1 (achievability\n"
      "regime of Theorem 2), degrades around ratio ~ 1, and collapses to 0\n"
      "for lambda^2 = Omega(m) where the theorem proves failure.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
