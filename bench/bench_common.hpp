#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the figure-reproduction binaries: a standard set
/// of CLI options, banner/footer printing, and CSV output next to the
/// console tables so each figure can be re-plotted externally.
///
/// Every bench supports:
///   --reps N      repetitions per grid point (figure-specific default)
///   --seed S      base seed (default 42; all runs derive from it)
///   --paper       run at the paper's full scale (n up to 1e5 / 100 reps)
///   --csv PATH    also write the series to a CSV file ("" = skip)

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "solve/reconstructor.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace npd::bench {

/// Standard options shared by the figure benches.
struct CommonOptions {
  long long reps = 0;
  long long seed = 0;
  bool paper = false;
  std::string csv_path;
  long long threads = 0;
};

/// Register the shared options on `cli`; read them after `parse()` via
/// the returned references bundle.
struct CommonBindings {
  const long long& reps;
  const long long& seed;
  const bool& paper;
  const std::string& csv_path;
  const long long& threads;

  [[nodiscard]] CommonOptions snapshot() const {
    return CommonOptions{.reps = reps,
                         .seed = seed,
                         .paper = paper,
                         .csv_path = csv_path,
                         .threads = threads};
  }
};

inline CommonBindings add_common_options(CliParser& cli,
                                         long long default_reps,
                                         std::string default_csv) {
  return CommonBindings{
      .reps = cli.add_int("reps", default_reps, "repetitions per grid point"),
      .seed = cli.add_int("seed", 42, "base seed for all derived streams"),
      .paper = cli.add_flag("paper", "full paper-scale run (slow)"),
      .csv_path =
          cli.add_string("csv", std::move(default_csv),
                         "CSV output path (empty string disables)"),
      .threads = cli.add_int(
          "threads", 0,
          "worker threads for repetitions (0 = all cores; results are "
          "identical for any value)")};
}

/// Solver selection for solver-generic benches: `--solver` picks any
/// registered reconstruction algorithm, `--solver-params` passes its
/// options (`key=value[;key=value...]`).  `make()` resolves against the
/// built-in registry — unknown names/options are hard errors, matching
/// `npd_run`.
struct SolverBindings {
  const std::string& solver;
  const std::string& solver_params;

  [[nodiscard]] std::unique_ptr<solve::Reconstructor> make() const {
    return solve::builtin_solvers().make(solver, solver_params);
  }
};

inline SolverBindings add_solver_options(CliParser& cli,
                                         std::string default_solver) {
  return SolverBindings{
      .solver = cli.add_string(
          "solver", std::move(default_solver),
          "registered solver name (see npd_run --list-solvers)"),
      .solver_params =
          cli.add_string("solver-params", "",
                         "solver options: key=value[;key=value...]")};
}

/// Banner identifying the figure being reproduced.
inline void print_banner(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("Paper: Distributed Reconstruction of Noisy Pooled Data "
              "(ICDCS 2022)\n");
  std::printf("==============================================================\n\n");
}

/// Footer with elapsed time.
inline void print_footer(const Timer& timer) {
  std::printf("\n[done in %.1f s]\n", timer.elapsed_seconds());
}

/// Writes rows to CSV if a path was configured.
class OptionalCsv {
 public:
  OptionalCsv(const std::string& path, std::vector<std::string> header) {
    if (!path.empty()) {
      writer_.emplace(path, std::move(header));
      path_ = path;
    }
  }

  void row(const std::vector<double>& cells) {
    if (writer_.has_value()) {
      writer_->row(cells);
    }
  }

  void finish() {
    if (writer_.has_value()) {
      writer_->close();
      std::printf("\n[csv written to %s]\n", path_.c_str());
    }
  }

 private:
  std::optional<CsvWriter> writer_;
  std::string path_;
};

}  // namespace npd::bench
