// Figure 7: overlap (the average fraction of correctly identified 1-bits)
// vs number of queries m at n = 1000 for the Z-channel, p ∈ {0.1, 0.3,
// 0.5}.  The paper's observation: at the m where exact success is still
// ~40%, the overlap is already ~90% — small misclassification rates make
// the greedy algorithm practical well below its exact-recovery threshold.
//
// Solver-generic: --solver selects any registered reconstruction
// algorithm (default greedy, which reproduces the paper's figure); the
// sweep runs through the unified solver API, so e.g. --solver amp or
// --solver two_stage plot the same protocol for the baselines.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig7_overlap",
                "overlap vs m at n=1000, Z-channel, any registered solver");
  const auto common = bench::add_common_options(cli, 30, "fig7_overlap.csv");
  const auto solver_opts = bench::add_solver_options(cli, "greedy");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& m_step = cli.add_int("m-step", 25, "grid step in m");
  const auto& m_max = cli.add_int("m-max", 600, "largest m");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Figure 7",
                      "overlap vs m, " + solver_opts.solver + ", n = 1000");
  const auto solver = solver_opts.make();

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, kTheta);
  const Index reps = common.paper ? 100 : static_cast<Index>(common.reps);
  const auto ms = harness::linear_grid(static_cast<Index>(m_step),
                                       static_cast<Index>(m_max),
                                       static_cast<Index>(m_step));
  const std::vector<double> ps{0.1, 0.3, 0.5};

  const double theory_m =
      core::theory::z_channel_sublinear(n, kTheta, 0.1, 0.1);
  std::printf("n = %lld, k = %lld, theory bound (p=0.1, eps=0.1): m = %.0f\n\n",
              static_cast<long long>(n), static_cast<long long>(k),
              std::ceil(theory_m));

  ConsoleTable table({"m", "p", "overlap", "success rate"});
  bench::OptionalCsv csv(common.csv_path,
                         {"m", "p", "overlap", "success_rate"});

  for (const double p : ps) {
    const auto points = harness::success_sweep(
        n, k, ms, reps, [](Index nn) { return pooling::paper_design(nn); },
        [p](Index, Index) { return noise::make_z_channel(p); }, *solver,
        static_cast<std::uint64_t>(common.seed) +
            static_cast<std::uint64_t>(p * 6007.0),
        static_cast<Index>(common.threads));

    for (const auto& point : points) {
      table.add_row_doubles({static_cast<double>(point.m), p,
                             point.mean_overlap, point.success_rate});
      csv.row({static_cast<double>(point.m), p, point.mean_overlap,
               point.success_rate});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): overlap rises well before exact success\n"
      "does — around the theory bound the overlap is already ~0.9 while\n"
      "the success rate is ~0.4 (compare with fig6 output).\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
