// Figure 5: box plots of the required number of queries at fixed sizes
// n ∈ {10³, 10⁴, 10⁵} for the Z-channel (p ∈ {0.1, 0.3, 0.5}) and the
// noisy query model (λ ∈ {0, 1, 2, 3}), θ = 0.25.  We print the
// five-number summaries (min / q1 / median / q3 / max) that define each
// box and whisker.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig5_boxplots",
                "required-queries boxplots at n = 1e3/1e4(/1e5)");
  const auto common = bench::add_common_options(cli, 10, "fig5_boxplots.csv");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner(
      "Figure 5", "boxplots: Z-channel p in {.1,.3,.5}; query noise "
                  "lambda in {0,1,2,3}");

  const bool paper = common.paper;
  std::vector<Index> ns{1000, 10000};
  if (paper) {
    ns.push_back(100000);
  }
  const Index reps = paper ? 25 : static_cast<Index>(common.reps);

  struct Config {
    std::string label;
    harness::ChannelFactory factory;
    std::uint64_t salt;
  };
  std::vector<Config> configs;
  for (const double p : {0.1, 0.3, 0.5}) {
    configs.push_back(Config{
        "z(p=" + std::to_string(p).substr(0, 3) + ")",
        [p](Index, Index) { return noise::make_z_channel(p); },
        static_cast<std::uint64_t>(p * 8009.0)});
  }
  for (const double lambda : {0.0, 1.0, 2.0, 3.0}) {
    configs.push_back(Config{
        "gauss(l=" + std::to_string(static_cast<int>(lambda)) + ")",
        [lambda](Index, Index) {
          return lambda > 0.0 ? noise::make_gaussian_channel(lambda)
                              : noise::make_noiseless();
        },
        1000003 + static_cast<std::uint64_t>(lambda * 631.0)});
  }

  ConsoleTable table({"n", "channel", "min", "q1", "median", "q3", "max"});
  bench::OptionalCsv csv(common.csv_path,
                         {"n", "channel_id", "min", "q1", "median", "q3",
                          "max"});

  for (const Index n : ns) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto rows = harness::required_queries_sweep(
          {n}, reps, [](Index nn) { return pooling::sublinear_k(nn, kTheta); },
          [](Index nn) { return pooling::paper_design(nn); },
          configs[c].factory,
          static_cast<std::uint64_t>(common.seed) + configs[c].salt, {},
          static_cast<Index>(common.threads));
      const auto& s = rows[0].summary;
      table.add_row({std::to_string(n), configs[c].label,
                     format_double(s.min), format_double(s.q1),
                     format_double(s.median), format_double(s.q3),
                     format_double(s.max)});
      csv.row({static_cast<double>(n), static_cast<double>(c), s.min, s.q1,
               s.median, s.q3, s.max});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): boxes shift upward with noise level at\n"
      "every n; the Z-channel spread grows sharply with p, the Gaussian\n"
      "boxes for lambda in {0..3} stay close together at large n.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
