// Figure 5: box plots of the required number of queries at fixed sizes
// n ∈ {10³, 10⁴, 10⁵} for the Z-channel (p ∈ {0.1, 0.3, 0.5}) and the
// noisy query model (λ ∈ {0, 1, 2, 3}), θ = 0.25.  We print the
// five-number summaries (min / q1 / median / q3 / max) that define each
// box and whisker.
//
// Thin wrapper over the batch engine's registered `fig5` scenario: the
// grid loop, worker scheduling and aggregation live in src/engine, and
// this binary only formats the scenario's aggregates.  The engine
// replicates this bench's historical per-repetition seed streams, so
// the numbers are unchanged for any given --seed.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig5_boxplots",
                "required-queries boxplots at n = 1e3/1e4(/1e5)");
  const auto common = bench::add_common_options(cli, 10, "fig5_boxplots.csv");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner(
      "Figure 5", "boxplots: Z-channel p in {.1,.3,.5}; query noise "
                  "lambda in {0,1,2,3}");

  const bool paper = common.paper;

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);
  engine::BatchRequest request;
  request.scenario_names = {"fig5"};
  request.config.seed = static_cast<std::uint64_t>(common.seed);
  request.config.reps =
      paper ? Index{25} : static_cast<Index>(common.reps);
  request.config.threads = static_cast<Index>(common.threads);
  request.overrides.push_back(
      {"fig5", "max_n", paper ? "100000" : "10000"});

  const engine::RunReport report = engine::run_batch(registry, request);
  const Json& cells = report.scenarios[0].aggregates.at("cells");

  ConsoleTable table({"n", "channel", "min", "q1", "median", "q3", "max"});
  bench::OptionalCsv csv(common.csv_path,
                         {"n", "channel_id", "min", "q1", "median", "q3",
                          "max"});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Json& cell = cells.at(i);
    const Json& m = cell.at("metrics").at("m");
    const auto n = cell.at("n").as_int();
    table.add_row({std::to_string(n), cell.at("channel").as_string(),
                   format_double(m.at("min").as_double()),
                   format_double(m.at("q1").as_double()),
                   format_double(m.at("median").as_double()),
                   format_double(m.at("q3").as_double()),
                   format_double(m.at("max").as_double())});
    csv.row({static_cast<double>(n),
             static_cast<double>(cell.at("channel_id").as_int()),
             m.at("min").as_double(), m.at("q1").as_double(),
             m.at("median").as_double(), m.at("q3").as_double(),
             m.at("max").as_double()});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): boxes shift upward with noise level at\n"
      "every n; the Z-channel spread grows sharply with p, the Gaussian\n"
      "boxes for lambda in {0..3} stay close together at large n.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
