// Ablation A6: AMP configuration.  Compares the Bayes-optimal Bernoulli
// posterior-mean denoiser against the soft-threshold (LASSO) denoiser,
// and undamped against damped iterations, on the Figure 6 setting
// (n = 1000, Z-channel p = 0.1).  Also prints the state-evolution
// fixed-point prediction for the Bayes denoiser at each m.

#include <cstdio>

#include "amp/amp.hpp"
#include "amp/state_evolution.hpp"
#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

using namespace npd;

struct Rates {
  double success = 0.0;
  double overlap = 0.0;
};

Rates run_variant(Index n, Index k, Index m, double p, Index reps,
                  std::uint64_t seed, const amp::Denoiser& denoiser,
                  double damping) {
  const noise::BitFlipChannel channel(p, 0.0);
  const auto lin = channel.linearization(n, k, n / 2);
  amp::AmpOptions options;
  options.damping = damping;

  Rates rates;
  const rand::Rng root(seed);
  for (Index rep = 0; rep < reps; ++rep) {
    rand::Rng rng = root.derive(static_cast<std::uint64_t>(rep));
    const core::Instance instance = core::make_instance(
        n, k, m, pooling::paper_design(n), channel, rng);
    const amp::AmpProblem problem = amp::standardize(instance, lin);
    const amp::AmpResult result = amp::run_amp(problem, denoiser, options);
    rates.success +=
        core::exact_success(result.estimate, instance.truth) ? 1.0 : 0.0;
    rates.overlap += core::overlap(result.estimate, instance.truth);
  }
  rates.success /= static_cast<double>(reps);
  rates.overlap /= static_cast<double>(reps);
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("abl6_amp_denoiser", "AMP denoiser and damping ablation");
  const auto common =
      bench::add_common_options(cli, 10, "abl6_amp_denoiser.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& p_opt = cli.add_double("p", 0.1, "Z-channel flip probability");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A6", "AMP: Bayes vs soft-threshold; damping");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, 0.25);
  const double p = p_opt;
  const double pi = static_cast<double>(k) / static_cast<double>(n);
  const Index reps = common.paper ? 50 : static_cast<Index>(common.reps);
  const auto ms = harness::linear_grid(50, 400, 50);

  const amp::BayesBernoulliDenoiser bayes(pi);
  const amp::SoftThresholdDenoiser soft(1.5);

  ConsoleTable table({"m", "bayes succ", "soft succ", "bayes damped succ",
                      "SE fixed-point tau2"});
  bench::OptionalCsv csv(common.csv_path,
                         {"m", "bayes_success", "soft_success",
                          "bayes_damped_success", "se_tau2"});

  for (std::size_t i = 0; i < ms.size(); ++i) {
    const Index m = ms[i];
    const auto seed = static_cast<std::uint64_t>(common.seed) +
                      static_cast<std::uint64_t>(i) * 71;
    const Rates bayes_rates = run_variant(n, k, m, p, reps, seed, bayes, 1.0);
    const Rates soft_rates = run_variant(n, k, m, p, reps, seed, soft, 1.0);
    const Rates damped_rates =
        run_variant(n, k, m, p, reps, seed, bayes, 0.7);

    // State-evolution fixed point for the Bayes denoiser at this m.
    const noise::BitFlipChannel channel(p, 0.0);
    const auto lin = channel.linearization(n, k, n / 2);
    const double gamma_pool = static_cast<double>(n) / 2.0;
    const double entry_var =
        gamma_pool / static_cast<double>(n) *
        (1.0 - 1.0 / static_cast<double>(n));
    const double s2 = static_cast<double>(m) * entry_var;
    amp::StateEvolutionParams params;
    params.pi = pi;
    params.n_over_m = static_cast<double>(n) / static_cast<double>(m);
    params.noise_var = lin.noise_var / (lin.gain * lin.gain * s2);
    const auto se = amp::run_state_evolution(params, bayes);

    table.add_row_doubles({static_cast<double>(m), bayes_rates.success,
                           soft_rates.success, damped_rates.success,
                           se.tau2.back()});
    csv.row({static_cast<double>(m), bayes_rates.success, soft_rates.success,
             damped_rates.success, se.tau2.back()});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: the Bayes denoiser dominates the prior-agnostic soft\n"
      "threshold; mild damping costs little.  The SE fixed point drops to\n"
      "the noise floor exactly where the empirical success rate jumps.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
