// Figure 4: required number of queries vs n for the general noisy channel
// with symmetric error rates p = q ∈ {10⁻¹ … 10⁻⁵}, θ = 0.25.
//
// This figure shows the regime transition predicted by the remark after
// Theorem 1: while q ≪ k/n the channel behaves like the Z-channel (m
// scales with k·ln n); once q ≫ k/n the false positives dominate and m
// scales with q·n·ln n — a visibly steeper ascent.  The theory column is
// the finite-n interpolated bound, which exhibits exactly this kink.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig4_general_channel",
                "required #queries vs n, general noisy channel p=q");
  const auto common =
      bench::add_common_options(cli, 3, "fig4_general_channel.csv");
  const auto& max_n = cli.add_int("max-n", 10000, "largest n in the grid");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Figure 4",
                      "required queries, general noisy channel, p = q");

  const bool paper = common.paper;
  const Index hi = paper ? 100000 : static_cast<Index>(max_n);
  const Index reps = paper ? 10 : static_cast<Index>(common.reps);
  const auto ns = harness::log_grid(100, hi, paper ? 3 : 2);
  const std::vector<double> qs{1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

  ConsoleTable table({"n", "k", "p=q", "median m", "mean m", "q1", "q3",
                      "theory (interp)", "capped"});
  bench::OptionalCsv csv(common.csv_path,
                         {"n", "k", "q", "median_m", "mean_m", "q1", "q3",
                          "min_m", "max_m", "theory_interpolated",
                          "capped_reps"});

  for (const double q : qs) {
    for (const Index n : ns) {
      const double theory = core::theory::channel_sublinear_interpolated(
          n, kTheta, q, q, 0.05);
      // Fail-safe cap: 20x the (asymptotic) bound.  In the q-dominated
      // regime at finite n the measured requirement sits a small factor
      // above the bound; runs that would exceed 20x are reported capped
      // instead of ground to the generic 1e6 limit.
      harness::RequiredQueriesOptions options;
      options.max_queries =
          std::max<Index>(5000, static_cast<Index>(20.0 * theory));
      // Channel-aware centering (p, q are known constants per Section
      // II-A): the analysis' score ψ − E[Ξ^pq | G].  The oblivious
      // Δ*·k/2 listing couples the q·Γ offset with Δ* fluctuations and
      // inflates the requirement by orders of magnitude at q >= 1e-2
      // (quantified in bench/abl3_centering --channel-aware).
      options.centering =
          core::Centering{.offset_per_slot = q, .gain = 1.0 - 2.0 * q};

      const auto rows = harness::required_queries_sweep(
          {n}, reps, [](Index nn) { return pooling::sublinear_k(nn, kTheta); },
          [](Index nn) { return pooling::paper_design(nn); },
          [q](Index, Index) { return noise::make_bitflip_channel(q, q); },
          static_cast<std::uint64_t>(common.seed) +
              static_cast<std::uint64_t>(-std::log10(q) * 131.0) +
              static_cast<std::uint64_t>(n),
          options, static_cast<Index>(common.threads));

      const auto& row = rows[0];
      table.add_row_doubles({static_cast<double>(row.n),
                             static_cast<double>(row.k), q,
                             row.summary.median, row.mean_m, row.summary.q1,
                             row.summary.q3, std::ceil(theory),
                             static_cast<double>(row.unreached)});
      csv.row({static_cast<double>(row.n), static_cast<double>(row.k), q,
               row.summary.median, row.mean_m, row.summary.q1, row.summary.q3,
               row.summary.min, row.summary.max, theory,
               static_cast<double>(row.unreached)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): small q behaves like the Z-channel; for\n"
      "q = 1e-3 the curve steepens once q dominates k/n (around n ~ 3000\n"
      "in the paper); q = 1e-1 is steep from the start.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
