// Figure 2: required number of queries vs n for the Z-channel (q = 0)
// with θ = 0.25 and p ∈ {0.1, 0.3, 0.5}.  The dashed line of the paper is
// the Theorem 1 bound for p = 0.1 with ε = 0.05; we print it alongside
// the measured median so shape and envelope can be compared directly.
//
// Thin wrapper over the batch engine's registered `fig2` scenario: the
// grid loop, worker scheduling and aggregation live in src/engine, and
// this binary only formats the scenario's aggregates.  The engine
// replicates this bench's historical per-repetition seed streams, so
// the numbers are unchanged for any given --seed.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/theory.hpp"
#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"
#include "util/ascii_plot.hpp"

namespace {

constexpr double kTheta = 0.25;

}  // namespace

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("fig2_zchannel",
                "required #queries vs n, Z-channel, theta=0.25");
  const auto common = bench::add_common_options(cli, 5, "fig2_zchannel.csv");
  const auto& max_n = cli.add_int("max-n", 10000, "largest n in the grid");
  const auto& theory_eps =
      cli.add_double("eps", 0.05, "epsilon in the theory bound");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Figure 2",
                      "required queries, Z-channel, p in {0.1, 0.3, 0.5}");

  const bool paper = common.paper;

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);
  engine::BatchRequest request;
  request.scenario_names = {"fig2"};
  request.config.seed = static_cast<std::uint64_t>(common.seed);
  request.config.reps = paper ? Index{25} : static_cast<Index>(common.reps);
  request.config.threads = static_cast<Index>(common.threads);
  request.overrides.push_back(
      {"fig2", "max_n",
       paper ? "100000" : std::to_string(static_cast<Index>(max_n))});
  request.overrides.push_back({"fig2", "ppd", paper ? "3" : "2"});

  const engine::RunReport report = engine::run_batch(registry, request);
  const Json& cells = report.scenarios[0].aggregates.at("cells");
  const std::vector<double> ps{0.1, 0.3, 0.5};
  const std::size_t points = cells.size() / ps.size();

  ConsoleTable table({"n", "k", "p", "median m", "mean m", "q1", "q3",
                      "theory m (p=0.1)"});
  bench::OptionalCsv csv(common.csv_path,
                         {"n", "k", "p", "median_m", "mean_m", "q1", "q3",
                          "min_m", "max_m", "theory_p01"});

  std::vector<PlotSeries> plot;
  const char markers[] = {'1', '3', '5'};
  PlotSeries theory_series{.label = "theory p=0.1 (dashed in paper)",
                           .x = {},
                           .y = {},
                           .marker = '.'};

  for (std::size_t pi = 0; pi < ps.size(); ++pi) {
    const double p = ps[pi];
    PlotSeries series{.label = "p = " + format_double(p),
                      .x = {},
                      .y = {},
                      .marker = markers[pi % 3]};
    for (std::size_t ni = 0; ni < points; ++ni) {
      const Json& cell = cells.at(pi * points + ni);
      const Json& m = cell.at("metrics").at("m");
      const auto n = cell.at("n").as_int();
      const auto k = cell.at("k").as_int();
      const double theory =
          core::theory::z_channel_sublinear(n, kTheta, 0.1, theory_eps);
      table.add_row_doubles(
          {static_cast<double>(n), static_cast<double>(k), p,
           m.at("median").as_double(), m.at("mean").as_double(),
           m.at("q1").as_double(), m.at("q3").as_double(),
           std::ceil(theory)});
      csv.row({static_cast<double>(n), static_cast<double>(k), p,
               m.at("median").as_double(), m.at("mean").as_double(),
               m.at("q1").as_double(), m.at("q3").as_double(),
               m.at("min").as_double(), m.at("max").as_double(), theory});
      series.x.push_back(static_cast<double>(n));
      series.y.push_back(m.at("median").as_double());
      if (pi == 0) {
        theory_series.x.push_back(static_cast<double>(n));
        theory_series.y.push_back(theory);
      }
    }
    plot.push_back(std::move(series));
  }
  plot.push_back(std::move(theory_series));

  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s",
              render_plot(plot, PlotOptions{.width = 72,
                                            .height = 20,
                                            .x_scale = AxisScale::Log10,
                                            .y_scale = AxisScale::Log10,
                                            .x_label = "number of agents n",
                                            .y_label = "required queries m",
                                            .title = "Figure 2 (log-log)"})
                  .c_str());
  std::printf(
      "\nExpected shape (paper): m grows ~ k·ln n; higher p needs more\n"
      "queries; the p = 0.1 series stays below the dashed theory line.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
