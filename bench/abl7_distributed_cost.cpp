// Ablation A7: communication cost of the distributed executions — the
// quantitative version of the paper's conclusion, which argues that the
// greedy algorithm needs only "one information exchange per network node"
// while (distributed) AMP floods the network every iteration.
//
// For each n we run Algorithm 1 on the network simulator and account its
// actual rounds/messages/bytes.  For AMP we report two costs:
//   * measured — the faithful distributed AMP of netsim/distributed_amp
//     (dense floods on the standardized design; run for n ≤ 1000 where
//     the simulation is cheap), iterated as many times as the centralized
//     implementation needed on the same instance;
//   * sparse model — the per-iteration cost if messages flowed only along
//     the 2·|edges| graph incidences (the [32]-style sparse variant),
//     an optimistic lower bound for larger n.
//
// Thin wrapper over the batch engine's registered `abl7` scenario: the
// per-n measurement lives in src/engine/builtin_scenarios.cpp with the
// same instance seeding (`Rng(seed + n)`), so the numbers are unchanged
// for any given --seed.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "engine/builtin_scenarios.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("abl7_distributed_cost",
                "network cost: distributed greedy vs distributed AMP");
  const auto common =
      bench::add_common_options(cli, 1, "abl7_distributed_cost.csv");
  const auto& max_n = cli.add_int("max-n", 4000, "largest n");
  const auto& amp_sim_max_n =
      cli.add_int("amp-sim-max-n", 1000,
                  "largest n for the faithful (dense) AMP simulation");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A7",
                      "rounds/messages/bytes of the distributed protocols");

  engine::ScenarioRegistry registry;
  engine::register_builtin_scenarios(registry);
  engine::BatchRequest request;
  request.scenario_names = {"abl7"};
  request.config.seed = static_cast<std::uint64_t>(common.seed);
  request.config.reps = static_cast<Index>(common.reps);
  request.config.threads = static_cast<Index>(common.threads);
  request.overrides.push_back(
      {"abl7", "max_n",
       std::to_string(common.paper ? 10000LL : max_n)});
  request.overrides.push_back(
      {"abl7", "amp_sim_max_n", std::to_string(amp_sim_max_n)});

  const engine::RunReport report = engine::run_batch(registry, request);
  const Json& cells = report.scenarios[0].aggregates.at("cells");

  ConsoleTable table({"n", "m", "greedy rounds", "greedy msgs", "amp iters",
                      "amp msgs measured", "amp rounds measured",
                      "amp msgs sparse-model", "msg ratio amp/greedy"});
  bench::OptionalCsv csv(
      common.csv_path,
      {"n", "m", "greedy_rounds", "greedy_messages", "greedy_bytes",
       "amp_iterations", "amp_messages_measured", "amp_rounds_measured",
       "amp_messages_sparse_model"});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Json& cell = cells.at(i);
    const Json& metrics = cell.at("metrics");
    // The measurement is deterministic per (seed, n): every repetition
    // reproduces the same numbers, so the mean is the measured value.
    const auto metric = [&](const char* name) {
      return metrics.at(name).at("mean").as_double();
    };
    const auto n = static_cast<double>(cell.at("n").as_int());
    table.add_row_doubles(
        {n, metric("m"), metric("greedy_rounds"), metric("greedy_messages"),
         metric("amp_iterations"), metric("amp_messages_measured"),
         metric("amp_rounds_measured"), metric("amp_messages_sparse_model"),
         metric("msg_ratio")});
    csv.row({n, metric("m"), metric("greedy_rounds"),
             metric("greedy_messages"), metric("greedy_bytes"),
             metric("amp_iterations"), metric("amp_messages_measured"),
             metric("amp_rounds_measured"),
             metric("amp_messages_sparse_model")});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: greedy broadcasts each query result once and then runs a\n"
      "Theta(log^2 n)-round sorting network of cheap pairwise exchanges.\n"
      "Faithful AMP on the centered design floods all n x m pairs twice\n"
      "per iteration (measured column, n <= %lld); even the optimistic\n"
      "sparse-edge model exceeds greedy's traffic several-fold — the\n"
      "paper's argument for the greedy variant in bandwidth-bound\n"
      "deployments.\n",
      static_cast<long long>(amp_sim_max_n));
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
