// Ablation A7: communication cost of the distributed executions — the
// quantitative version of the paper's conclusion, which argues that the
// greedy algorithm needs only "one information exchange per network node"
// while (distributed) AMP floods the network every iteration.
//
// For each n we run Algorithm 1 on the network simulator and account its
// actual rounds/messages/bytes.  For AMP we report two costs:
//   * measured — the faithful distributed AMP of netsim/distributed_amp
//     (dense floods on the standardized design; run for n ≤ 1000 where
//     the simulation is cheap), iterated as many times as the centralized
//     implementation needed on the same instance;
//   * sparse model — the per-iteration cost if messages flowed only along
//     the 2·|edges| graph incidences (the [32]-style sparse variant),
//     an optimistic lower bound for larger n.

#include <cmath>
#include <cstdio>

#include "amp/amp.hpp"
#include "bench_common.hpp"
#include "core/instance.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "netsim/distributed_amp.hpp"
#include "netsim/distributed_greedy.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("abl7_distributed_cost",
                "network cost: distributed greedy vs distributed AMP");
  const auto common =
      bench::add_common_options(cli, 1, "abl7_distributed_cost.csv");
  const auto& max_n = cli.add_int("max-n", 4000, "largest n");
  const auto& amp_sim_max_n =
      cli.add_int("amp-sim-max-n", 1000,
                  "largest n for the faithful (dense) AMP simulation");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A7",
                      "rounds/messages/bytes of the distributed protocols");

  const double p = 0.1;
  const noise::BitFlipChannel channel(p, 0.0);
  const Index hi = common.paper ? 10000 : static_cast<Index>(max_n);
  const auto ns = harness::log_grid(100, hi, 2);

  ConsoleTable table({"n", "m", "greedy rounds", "greedy msgs", "amp iters",
                      "amp msgs measured", "amp rounds measured",
                      "amp msgs sparse-model", "msg ratio amp/greedy"});
  bench::OptionalCsv csv(
      common.csv_path,
      {"n", "m", "greedy_rounds", "greedy_messages", "greedy_bytes",
       "amp_iterations", "amp_messages_measured", "amp_rounds_measured",
       "amp_messages_sparse_model"});

  for (const Index n : ns) {
    const Index k = pooling::sublinear_k(n, 0.25);
    // Queries: slightly above the Theorem 1 bound so both algorithms
    // operate in their success regime.
    const auto m = static_cast<Index>(
        std::ceil(1.5 * core::theory::z_channel_sublinear(n, 0.25, p, 0.1)));

    rand::Rng rng(static_cast<std::uint64_t>(common.seed) +
                  static_cast<std::uint64_t>(n));
    const core::Instance instance = core::make_instance(
        n, k, m, pooling::paper_design(n), channel, rng);

    const auto greedy = netsim::run_distributed_greedy(instance);

    const auto lin = channel.linearization(n, k, n / 2);
    const amp::AmpProblem problem = amp::standardize(instance, lin);
    const amp::BayesBernoulliDenoiser denoiser(problem.pi);
    const auto centralized_amp = amp::run_amp(problem, denoiser);

    // Faithful dense simulation where affordable; sparse-edge model always.
    double measured_msgs = 0.0;
    double measured_rounds = 0.0;
    if (n <= static_cast<Index>(amp_sim_max_n)) {
      const auto dist_amp = netsim::run_distributed_amp(
          instance, problem, denoiser, centralized_amp.iterations);
      measured_msgs = static_cast<double>(dist_amp.iteration_stats.messages +
                                          dist_amp.topk_stats.messages);
      measured_rounds = static_cast<double>(dist_amp.iteration_stats.rounds +
                                            dist_amp.topk_stats.rounds);
    }
    Index distinct_incidences = 0;
    for (Index j = 0; j < instance.m(); ++j) {
      distinct_incidences +=
          static_cast<Index>(instance.graph.query_distinct(j).size());
    }
    const double sparse_model =
        static_cast<double>(2 * distinct_incidences) *
        static_cast<double>(centralized_amp.iterations);

    const double reference =
        measured_msgs > 0.0 ? measured_msgs : sparse_model;
    const double ratio =
        reference / static_cast<double>(greedy.stats.messages);
    table.add_row_doubles(
        {static_cast<double>(n), static_cast<double>(m),
         static_cast<double>(greedy.stats.rounds),
         static_cast<double>(greedy.stats.messages),
         static_cast<double>(centralized_amp.iterations), measured_msgs,
         measured_rounds, sparse_model, ratio});
    csv.row({static_cast<double>(n), static_cast<double>(m),
             static_cast<double>(greedy.stats.rounds),
             static_cast<double>(greedy.stats.messages),
             static_cast<double>(greedy.stats.bytes),
             static_cast<double>(centralized_amp.iterations), measured_msgs,
             measured_rounds, sparse_model});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: greedy broadcasts each query result once and then runs a\n"
      "Theta(log^2 n)-round sorting network of cheap pairwise exchanges.\n"
      "Faithful AMP on the centered design floods all n x m pairs twice\n"
      "per iteration (measured column, n <= %lld); even the optimistic\n"
      "sparse-edge model exceeds greedy's traffic several-fold — the\n"
      "paper's argument for the greedy variant in bandwidth-bound\n"
      "deployments.\n",
      static_cast<long long>(amp_sim_max_n));
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
