// Ablation A4: the two-stage local-correction extension — the paper's
// concluding open question ("whether a two-step algorithm that locally
// tries to correct errors ... performs even better").  Compares greedy,
// greedy + local correction, and AMP on the same Z-channel success curve.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("abl4_two_stage",
                "greedy vs two-stage local correction vs AMP");
  const auto common = bench::add_common_options(cli, 15, "abl4_two_stage.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& p_opt = cli.add_double("p", 0.3, "Z-channel flip probability");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A4",
                      "two-stage local correction (conclusion's open "
                      "question)");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, 0.25);
  const double p = p_opt;
  const Index reps = common.paper ? 100 : static_cast<Index>(common.reps);
  const auto ms = harness::linear_grid(50, 500, 50);

  const auto design_of_n = [](Index nn) { return pooling::paper_design(nn); };
  const auto factory = [p](Index, Index) { return noise::make_z_channel(p); };

  ConsoleTable table({"m", "greedy succ", "2-stage succ", "amp succ",
                      "greedy ovl", "2-stage ovl", "amp ovl"});
  bench::OptionalCsv csv(common.csv_path,
                         {"m", "greedy_success", "two_stage_success",
                          "amp_success", "greedy_overlap",
                          "two_stage_overlap", "amp_overlap"});

  const auto seed = static_cast<std::uint64_t>(common.seed);
  const Index threads = static_cast<Index>(common.threads);
  const auto greedy = harness::success_sweep(
      n, k, ms, reps, design_of_n, factory, harness::Algorithm::Greedy, seed,
      {}, threads);
  const auto two_stage = harness::success_sweep(
      n, k, ms, reps, design_of_n, factory, harness::Algorithm::TwoStage,
      seed, {}, threads);
  const auto amp = harness::success_sweep(
      n, k, ms, reps, design_of_n, factory, harness::Algorithm::Amp, seed,
      {}, threads);

  for (std::size_t i = 0; i < ms.size(); ++i) {
    table.add_row_doubles({static_cast<double>(ms[i]),
                           greedy[i].success_rate, two_stage[i].success_rate,
                           amp[i].success_rate, greedy[i].mean_overlap,
                           two_stage[i].mean_overlap, amp[i].mean_overlap});
    csv.row({static_cast<double>(ms[i]), greedy[i].success_rate,
             two_stage[i].success_rate, amp[i].success_rate,
             greedy[i].mean_overlap, two_stage[i].mean_overlap,
             amp[i].mean_overlap});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: local correction shifts the greedy transition left,\n"
      "partially closing the gap to AMP while keeping the one-exchange\n"
      "communication pattern (stage 2 reuses the stage-1 messages).\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
