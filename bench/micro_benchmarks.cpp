// Micro-benchmarks (google-benchmark) of the hot kernels: query
// sampling, incremental score updates, top-k selection, sorting-network
// generation/application, dense matvec (the AMP inner loop), channel
// measurement, and the end-to-end required-queries protocol at small n.

#include <benchmark/benchmark.h>

#include <vector>

#include "amp/amp.hpp"
#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "core/scores.hpp"
#include "harness/required_queries.hpp"
#include "linalg/dense.hpp"
#include "netsim/sorting_network.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/pooling_graph.hpp"
#include "pooling/query_design.hpp"
#include "rand/rng.hpp"

namespace {

using namespace npd;

void BM_SampleQuery(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  rand::Rng rng(1);
  const pooling::QueryDesign design = pooling::paper_design(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pooling::sample_query(design, n, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          design.gamma);
}
BENCHMARK(BM_SampleQuery)->Arg(1000)->Arg(10000);

void BM_ScoreStateApplyQuery(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  rand::Rng rng(2);
  const pooling::QueryDesign design = pooling::paper_design(n);
  core::ScoreState scores(n, pooling::sublinear_k(n, 0.25));
  const auto query = pooling::sample_query(design, n, rng);
  for (auto _ : state) {
    scores.apply_query(query, 42.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          design.gamma);
}
BENCHMARK(BM_ScoreStateApplyQuery)->Arg(1000)->Arg(10000);

void BM_SelectTopK(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  rand::Rng rng(3);
  std::vector<double> scores(static_cast<std::size_t>(n));
  for (auto& s : scores) {
    s = rng.uniform_real();
  }
  const Index k = pooling::sublinear_k(n, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_top_k(scores, k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SelectTopK)->Arg(1000)->Arg(100000);

void BM_OddEvenScheduleGeneration(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::make_odd_even_schedule(n));
  }
}
BENCHMARK(BM_OddEvenScheduleGeneration)->Arg(1024)->Arg(16384);

void BM_SortingNetworkApply(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  const netsim::SortingSchedule schedule = netsim::make_odd_even_schedule(n);
  rand::Rng rng(4);
  std::vector<double> base(static_cast<std::size_t>(n));
  for (auto& v : base) {
    v = rng.uniform_real();
  }
  for (auto _ : state) {
    std::vector<double> values = base;
    netsim::apply_schedule(schedule, values);
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          schedule.comparator_count());
}
BENCHMARK(BM_SortingNetworkApply)->Arg(1024)->Arg(8192);

void BM_DenseMatvec(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  const Index m = n / 2;
  rand::Rng rng(5);
  const pooling::PoolingGraph graph =
      pooling::make_pooling_graph(n, m, pooling::paper_design(n), rng);
  const linalg::DenseMatrix a = linalg::counting_matrix(graph);
  std::vector<double> x(static_cast<std::size_t>(n), 0.5);
  std::vector<double> y(static_cast<std::size_t>(m));
  for (auto _ : state) {
    a.matvec(x, y);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          m);
}
BENCHMARK(BM_DenseMatvec)->Arg(500)->Arg(1000);

void BM_ChannelMeasureBitFlip(benchmark::State& state) {
  const Index n = 1000;
  rand::Rng rng(6);
  const pooling::GroundTruth truth = pooling::make_ground_truth(n, 6, rng);
  const auto query = pooling::sample_query(pooling::paper_design(n), n, rng);
  const noise::BitFlipChannel channel(0.1, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.measure(query, truth.bits, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(query.size()));
}
BENCHMARK(BM_ChannelMeasureBitFlip);

void BM_ChannelMeasureGaussian(benchmark::State& state) {
  const Index n = 1000;
  rand::Rng rng(7);
  const pooling::GroundTruth truth = pooling::make_ground_truth(n, 6, rng);
  const auto query = pooling::sample_query(pooling::paper_design(n), n, rng);
  const noise::GaussianQueryChannel channel(2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.measure(query, truth.bits, rng));
  }
}
BENCHMARK(BM_ChannelMeasureGaussian);

void BM_RequiredQueriesProtocol(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  const Index k = pooling::sublinear_k(n, 0.25);
  const auto channel = noise::make_z_channel(0.1);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    rand::Rng rng(1000 + rep++);
    benchmark::DoNotOptimize(harness::required_queries(
        n, k, pooling::paper_design(n), *channel, rng));
  }
}
BENCHMARK(BM_RequiredQueriesProtocol)->Arg(300)->Arg(1000);

void BM_AmpIteration(benchmark::State& state) {
  const Index n = 1000;
  const Index k = pooling::sublinear_k(n, 0.25);
  const Index m = 300;
  rand::Rng rng(8);
  const noise::BitFlipChannel channel(0.1, 0.0);
  const core::Instance instance =
      core::make_instance(n, k, m, pooling::paper_design(n), channel, rng);
  const amp::AmpProblem problem =
      amp::standardize(instance, channel.linearization(n, k, n / 2));
  const amp::BayesBernoulliDenoiser denoiser(problem.pi);
  amp::AmpOptions options;
  options.max_iterations = 1;
  options.convergence_tol = 0.0;  // force exactly one iteration
  for (auto _ : state) {
    benchmark::DoNotOptimize(amp::run_amp(problem, denoiser, options));
  }
}
BENCHMARK(BM_AmpIteration);

}  // namespace
