#!/usr/bin/env python3
"""Compare benchmark results against the committed baseline.

The committed baseline (bench/baseline/) was recorded on one particular
machine; CI runners are faster or slower across the board.  Raw
per-benchmark comparison would therefore flag machine speed, not code
regressions.  Instead:

  1. compute a machine-speed factor: the geometric mean, over every
     benchmark present in both files, of current_time / baseline_time;
  2. a benchmark only counts as regressed when it is more than
     `--tolerance` (default 1.25) slower than the baseline *after*
     dividing out that factor — i.e. it got slower relative to its
     peers, which is what a code regression looks like;
  3. the npd_run wall-clock baseline (BENCH_run.json) is compared the
     same way, scaled by the micro-benchmark speed factor.

`--validate-only` just checks the baseline files parse and carry the
expected shape — the deterministic half that runs as a ctest on every
machine, benchmark library or not.

Exit codes: 0 OK, 1 regression found, 2 usage/baseline error.
"""

import argparse
import json
import math
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read '{path}': {error}", file=sys.stderr)
        sys.exit(2)


def micro_times(document, path):
    """name -> real_time (ns) from a Google Benchmark JSON document."""
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        print(f"error: '{path}' has no benchmarks array", file=sys.stderr)
        sys.exit(2)
    samples = {}
    for entry in benchmarks:
        name = entry.get("name")
        time = entry.get("real_time")
        if not isinstance(name, str) or not isinstance(time, (int, float)):
            print(f"error: '{path}' entry without name/real_time",
                  file=sys.stderr)
            sys.exit(2)
        if entry.get("run_type", "iteration") == "iteration" and time > 0:
            # Repetitions repeat a name; collect all samples per name.
            samples.setdefault(name, []).append(float(time))
    if not samples:
        print(f"error: '{path}' has no usable iteration entries",
              file=sys.stderr)
        sys.exit(2)
    # Median across repetitions: robust against one lucky/unlucky rep in
    # a way min is not (a single fast outlier in the baseline would turn
    # into a permanent false regression).
    return {name: sorted(values)[len(values) // 2]
            for name, values in samples.items()}


def run_perf(document, path):
    """(wall_seconds, total_jobs) from a BENCH_run.json document."""
    if document.get("schema") != "npd.bench_run/1":
        print(f"error: '{path}' schema is not npd.bench_run/1",
              file=sys.stderr)
        sys.exit(2)
    perf = document.get("perf", {})
    wall = perf.get("wall_seconds")
    jobs = perf.get("total_jobs")
    if not isinstance(wall, (int, float)) or wall <= 0 or \
            not isinstance(jobs, int) or jobs <= 0:
        print(f"error: '{path}' perf block incomplete", file=sys.stderr)
        sys.exit(2)
    return float(wall), jobs


def speed_factor(baseline, current):
    """Geometric mean of current/baseline over the shared benchmarks."""
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: baseline and current share no benchmarks",
              file=sys.stderr)
        sys.exit(2)
    log_sum = sum(math.log(current[name] / baseline[name])
                  for name in shared)
    return math.exp(log_sum / len(shared)), shared


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_micro.json")
    parser.add_argument("--current",
                        help="freshly recorded micro-benchmark JSON")
    parser.add_argument("--run-baseline",
                        help="committed BENCH_run.json (npd_run wall clock)")
    parser.add_argument("--run-current",
                        help="freshly recorded npd.bench_run/1 JSON")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="allowed slowdown after normalization "
                             "(default 1.25 = 25%%)")
    parser.add_argument("--validate-only", action="store_true",
                        help="only check the baseline files' shape")
    args = parser.parse_args()

    baseline = micro_times(load_json(args.baseline), args.baseline)
    if args.run_baseline:
        run_perf(load_json(args.run_baseline), args.run_baseline)
    if args.validate_only:
        print(f"baseline OK: {len(baseline)} micro benchmarks"
              + (", npd_run wall-clock present" if args.run_baseline else ""))
        return 0

    if not args.current:
        parser.error("--current is required unless --validate-only")
    current = micro_times(load_json(args.current), args.current)
    factor, shared = speed_factor(baseline, current)
    print(f"machine speed factor (geomean over {len(shared)} shared "
          f"benchmarks): {factor:.3f}x")

    regressions = []
    for name in shared:
        normalized = current[name] / factor
        ratio = normalized / baseline[name]
        marker = " <-- REGRESSION" if ratio > args.tolerance else ""
        print(f"  {name}: {baseline[name]:.0f} -> {current[name]:.0f} ns "
              f"(normalized ratio {ratio:.2f}){marker}")
        if ratio > args.tolerance:
            regressions.append(name)

    if args.run_baseline and args.run_current:
        base_wall, base_jobs = run_perf(load_json(args.run_baseline),
                                        args.run_baseline)
        cur_wall, cur_jobs = run_perf(load_json(args.run_current),
                                      args.run_current)
        if cur_jobs != base_jobs:
            print(f"error: npd_run job count changed "
                  f"({base_jobs} -> {cur_jobs}); re-record the baseline "
                  f"batch", file=sys.stderr)
            sys.exit(2)
        ratio = (cur_wall / factor) / base_wall
        marker = " <-- REGRESSION" if ratio > args.tolerance else ""
        print(f"  npd_run wall: {base_wall:.2f}s -> {cur_wall:.2f}s "
              f"(normalized ratio {ratio:.2f}){marker}")
        if ratio > args.tolerance:
            regressions.append("npd_run.wall_seconds")

    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.2f}x: {', '.join(regressions)}")
        return 1
    print(f"OK: no benchmark slower than {args.tolerance:.2f}x baseline "
          f"after normalization")
    return 0


if __name__ == "__main__":
    sys.exit(main())
