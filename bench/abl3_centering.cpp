// Ablation A3: the centering term of the score.  Three variants:
//
//   raw       — rank by the plain neighborhood sum Ψ_i,
//   oblivious — Algorithm 1's listing, Ψ_i − Δ*_i·k/2,
//   aware     — the analysis' score ψ − E[Ξ^pq | G] (Equation 3), which
//               uses the known channel constants: center per query
//               q·Γ + (1−p−q)·Γ·k/n.
//
// On the Z-channel (q = 0) oblivious ≈ aware; on the general channel the
// q·Γ offset couples with the Θ(√m) fluctuation of Δ*_i, so the
// oblivious score needs far more queries — the quantitative reason the
// fig4 harness uses channel-aware centering.

#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

using namespace npd;

struct Rates {
  double success = 0.0;
  double overlap = 0.0;
};

struct Comparison {
  Rates raw;
  Rates oblivious;
  Rates aware;
};

Comparison compare_scorings(Index n, Index k, Index m, double p, double q,
                            Index reps, std::uint64_t seed) {
  const noise::BitFlipChannel channel(p, q);
  const core::Centering aware_centering{.offset_per_slot = q,
                                        .gain = 1.0 - p - q};
  Comparison cmp;
  const rand::Rng root(seed);
  for (Index rep = 0; rep < reps; ++rep) {
    rand::Rng rng = root.derive(static_cast<std::uint64_t>(rep));
    const core::Instance instance = core::make_instance(
        n, k, m, pooling::paper_design(n), channel, rng);

    const core::ScoreState oblivious_scores = core::compute_scores(instance);
    const core::ScoreState aware_scores =
        core::compute_scores(instance, aware_centering);

    const auto raw_est =
        core::select_top_k(oblivious_scores.raw_psi(), k).estimate;
    const auto oblivious_est =
        core::select_top_k(oblivious_scores.centered_scores(), k).estimate;
    const auto aware_est =
        core::select_top_k(aware_scores.centered_scores(), k).estimate;

    const auto tally = [&](Rates& rates, const BitVector& est) {
      rates.success += core::exact_success(est, instance.truth) ? 1.0 : 0.0;
      rates.overlap += core::overlap(est, instance.truth);
    };
    tally(cmp.raw, raw_est);
    tally(cmp.oblivious, oblivious_est);
    tally(cmp.aware, aware_est);
  }
  const auto r = static_cast<double>(reps);
  for (Rates* rates : {&cmp.raw, &cmp.oblivious, &cmp.aware}) {
    rates->success /= r;
    rates->overlap /= r;
  }
  return cmp;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("abl3_centering",
                "raw vs oblivious vs channel-aware score centering");
  const auto common = bench::add_common_options(cli, 20, "abl3_centering.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& p_opt = cli.add_double("p", 0.1, "false-negative rate");
  const auto& q_opt = cli.add_double("q", 0.05, "false-positive rate");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A3",
                      "score centering: raw Psi vs Delta*k/2 vs "
                      "channel-aware");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, 0.25);
  const double p = p_opt;
  const double q = q_opt;
  const Index reps = common.paper ? 100 : static_cast<Index>(common.reps);
  // The aware-centering threshold for (p, q) = (0.1, 0.05) at n = 1000
  // sits near m ~ 1900 (interpolated Theorem 1); span it comfortably.
  const auto ms = harness::linear_grid(400, 4000, 400);

  std::printf("n = %lld, k = %lld, channel p = %.3f q = %.3f\n\n",
              static_cast<long long>(n), static_cast<long long>(k), p, q);

  ConsoleTable table({"m", "raw succ", "oblivious succ", "aware succ",
                      "raw ovl", "oblivious ovl", "aware ovl"});
  bench::OptionalCsv csv(common.csv_path,
                         {"m", "raw_success", "oblivious_success",
                          "aware_success", "raw_overlap",
                          "oblivious_overlap", "aware_overlap"});

  for (std::size_t i = 0; i < ms.size(); ++i) {
    const Comparison cmp =
        compare_scorings(n, k, ms[i], p, q, reps,
                         static_cast<std::uint64_t>(common.seed) +
                             static_cast<std::uint64_t>(i) * 17);
    table.add_row_doubles({static_cast<double>(ms[i]), cmp.raw.success,
                           cmp.oblivious.success, cmp.aware.success,
                           cmp.raw.overlap, cmp.oblivious.overlap,
                           cmp.aware.overlap});
    csv.row({static_cast<double>(ms[i]), cmp.raw.success,
             cmp.oblivious.success, cmp.aware.success, cmp.raw.overlap,
             cmp.oblivious.overlap, cmp.aware.overlap});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: channel-aware centering reaches success 1 first; the\n"
      "oblivious listing needs noticeably more queries once q > 0 (the\n"
      "q*Gamma offset rides the Delta* fluctuations), and raw Psi is the\n"
      "worst throughout.  Rerun with --q 0 to see oblivious == aware on\n"
      "the Z-channel.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
