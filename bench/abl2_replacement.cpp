// Ablation A2: sampling discipline of the query design.  The paper
// samples agents **with replacement** (multi-edges allowed, following
// [4, 13, 33]); classical group-testing designs sample without
// replacement, and near-constant-column-weight designs assign each agent
// a fixed number of queries.  This bench compares greedy success rates
// of the three designs at equal m.

#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "core/theory.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

namespace {

using namespace npd;

/// Success rate of greedy over `reps` fresh constant-column-weight
/// instances with per-agent weight ≈ γ·m (the expected Δ* of the paper's
/// design at the same m, making the comparison traffic-fair).
double ccw_success(Index n, Index k, Index m, double p, Index reps,
                   std::uint64_t seed, double* overlap_out) {
  const auto channel = noise::make_z_channel(p);
  const Index weight = std::max<Index>(
      1, static_cast<Index>(core::theory::gamma_constant() *
                            static_cast<double>(m)));
  double successes = 0.0;
  double overlap_sum = 0.0;
  const rand::Rng root(seed);
  for (Index rep = 0; rep < reps; ++rep) {
    rand::Rng rng = root.derive(static_cast<std::uint64_t>(rep));
    core::Instance instance;
    instance.truth = pooling::make_ground_truth(n, k, rng);
    instance.graph = pooling::make_constant_column_weight_graph(
        n, m, std::min(weight, m), rng);
    instance.results =
        core::measure_all(instance.graph, instance.truth, *channel, rng);
    const auto result = core::greedy_reconstruct(instance);
    if (core::exact_success(result.estimate, instance.truth)) {
      successes += 1.0;
    }
    overlap_sum += core::overlap(result.estimate, instance.truth);
  }
  *overlap_out = overlap_sum / static_cast<double>(reps);
  return successes / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("abl2_replacement",
                "success vs m for three query designs");
  const auto common =
      bench::add_common_options(cli, 15, "abl2_replacement.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& p_opt = cli.add_double("p", 0.1, "Z-channel flip probability");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A2",
                      "with vs without replacement vs Bernoulli vs constant "
                      "column weight");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, 0.25);
  const double p = p_opt;
  const Index reps = common.paper ? 100 : static_cast<Index>(common.reps);
  const auto ms = harness::linear_grid(50, 400, 50);

  ConsoleTable table({"m", "with-repl succ", "w/o-repl succ", "bernoulli succ",
                      "ccw succ", "with-repl ovl", "w/o-repl ovl",
                      "bernoulli ovl", "ccw ovl"});
  bench::OptionalCsv csv(common.csv_path,
                         {"m", "with_success", "without_success",
                          "bernoulli_success", "ccw_success", "with_overlap",
                          "without_overlap", "bernoulli_overlap",
                          "ccw_overlap"});

  const auto factory = [p](Index, Index) { return noise::make_z_channel(p); };
  const auto with_design = [](Index nn) { return pooling::paper_design(nn); };
  const auto without_design = [](Index nn) {
    return pooling::fractional_design(nn, 0.5,
                                      pooling::SamplingMode::WithoutReplacement);
  };

  const Index threads = static_cast<Index>(common.threads);
  const auto with_points = harness::success_sweep(
      n, k, ms, reps, with_design, factory, harness::Algorithm::Greedy,
      static_cast<std::uint64_t>(common.seed), {}, threads);
  const auto without_points = harness::success_sweep(
      n, k, ms, reps, without_design, factory, harness::Algorithm::Greedy,
      static_cast<std::uint64_t>(common.seed) + 1, {}, threads);
  const auto bernoulli_design = [](Index nn) {
    return pooling::fractional_design(nn, 0.5,
                                      pooling::SamplingMode::Bernoulli);
  };
  const auto bernoulli_points = harness::success_sweep(
      n, k, ms, reps, bernoulli_design, factory, harness::Algorithm::Greedy,
      static_cast<std::uint64_t>(common.seed) + 3, {}, threads);

  for (std::size_t i = 0; i < ms.size(); ++i) {
    double ccw_overlap = 0.0;
    const double ccw_rate =
        ccw_success(n, k, ms[i], p, reps,
                    static_cast<std::uint64_t>(common.seed) + 2 +
                        static_cast<std::uint64_t>(i) * 131,
                    &ccw_overlap);
    table.add_row_doubles({static_cast<double>(ms[i]),
                           with_points[i].success_rate,
                           without_points[i].success_rate,
                           bernoulli_points[i].success_rate, ccw_rate,
                           with_points[i].mean_overlap,
                           without_points[i].mean_overlap,
                           bernoulli_points[i].mean_overlap, ccw_overlap});
    csv.row({static_cast<double>(ms[i]), with_points[i].success_rate,
             without_points[i].success_rate,
             bernoulli_points[i].success_rate, ccw_rate,
             with_points[i].mean_overlap, without_points[i].mean_overlap,
             bernoulli_points[i].mean_overlap, ccw_overlap});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: all four designs transition at similar m — the paper's\n"
      "with-replacement choice (simplest to run distributedly) costs at\n"
      "most a small constant over the more regular designs.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
