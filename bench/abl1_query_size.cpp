// Ablation A1: pool size Γ.  The paper fixes Γ = n/2; this bench sweeps
// the pool fraction Γ/n and measures the required number of queries under
// the Z-channel.  The per-query centering Γ·k/n in ScoreState keeps the
// score unbiased for every Γ, so this isolates the information content of
// the pool size itself.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/sweeps.hpp"
#include "noise/channel.hpp"
#include "pooling/ground_truth.hpp"
#include "pooling/query_design.hpp"

int main(int argc, char** argv) {
  using namespace npd;

  CliParser cli("abl1_query_size",
                "required #queries vs pool fraction Gamma/n");
  const auto common = bench::add_common_options(cli, 10, "abl1_query_size.csv");
  const auto& n_opt = cli.add_int("n", 1000, "number of agents");
  const auto& p_opt = cli.add_double("p", 0.1, "Z-channel flip probability");
  cli.parse(argc, argv);

  const Timer timer;
  bench::print_banner("Ablation A1",
                      "pool-size sweep (paper fixes Gamma = n/2)");

  const auto n = static_cast<Index>(n_opt);
  const Index k = pooling::sublinear_k(n, 0.25);
  const double p = p_opt;
  const Index reps = common.paper ? 50 : static_cast<Index>(common.reps);
  const std::vector<double> fractions{0.05, 0.1, 0.25, 0.5, 0.75, 0.9};

  ConsoleTable table({"Gamma/n", "Gamma", "median m", "mean m", "q1", "q3"});
  bench::OptionalCsv csv(common.csv_path,
                         {"fraction", "gamma", "median_m", "mean_m", "q1",
                          "q3"});

  for (const double fraction : fractions) {
    const auto rows = harness::required_queries_sweep(
        {n}, reps, [k](Index) { return k; },
        [fraction](Index nn) {
          return pooling::fractional_design(
              nn, fraction, pooling::SamplingMode::WithReplacement);
        },
        [p](Index, Index) { return noise::make_z_channel(p); },
        static_cast<std::uint64_t>(common.seed) +
            static_cast<std::uint64_t>(fraction * 1000.0),
        {}, static_cast<Index>(common.threads));

    const auto& row = rows[0];
    const double gamma = fraction * static_cast<double>(n);
    table.add_row_doubles({fraction, gamma, row.summary.median, row.mean_m,
                           row.summary.q1, row.summary.q3});
    csv.row({fraction, gamma, row.summary.median, row.mean_m, row.summary.q1,
             row.summary.q3});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: moderate pools (Gamma/n around 1/2) minimize the required\n"
      "number of queries — tiny pools carry little information per query,\n"
      "while near-full pools make all queries look alike.\n");
  csv.finish();
  bench::print_footer(timer);
  return 0;
}
